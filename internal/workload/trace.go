package workload

// Arrival-trace record/replay. A trace file captures a scenario's
// expanded spec stream — every arrival instant and the per-connection
// parameters drawn from the scenario's RNG streams — in a compact
// varint wire format. Replaying a trace against the same scenario
// bypasses the arrival process entirely and reproduces the exact
// connection stream, which makes generator regressions bisectable: a
// recorded trace from a known-good build replays byte-identically on
// any later build unless the per-connection simulation itself changed.
//
// The format is self-checking (CRC32 over the whole payload) and
// refuses traces whose header does not match the scenario it is
// replayed against: specs reference the scenario's country table,
// address plan, and domain universe by index/ASN/name, so a mismatched
// scenario would resolve them to different objects and silently change
// the output.
//
// Layout (all integers varint unless noted):
//
//	magic "TDTR\x01"
//	header: name string, seed uvarint, hours uvarint, count uvarint
//	count records:
//	  seed uvarint, startDelta uvarint (ns since previous arrival),
//	  country uvarint (index into Scenario.Countries), asn uvarint,
//	  flags byte, behavior uvarint, style uvarint, variant uvarint,
//	  ttl byte, hostIdx varint, domain string ("" = none)
//	footer: crc32(IEEE) of everything above, 4 bytes little-endian

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"tamperdetect/internal/geo"
	"tamperdetect/internal/netsim"
	"tamperdetect/internal/tcpsim"
	"tamperdetect/internal/wire"
)

var traceMagic = []byte("TDTR\x01")

// spec flag bits.
const (
	traceV6 = 1 << iota
	traceTLS
	traceBlocked
	traceSYNPayload
	traceCensorActive
	traceKeywordTrigger
	traceIPIDZero
)

// maxTraceName bounds the header name on read.
const maxTraceName = 1 << 10

// WriteTrace serializes a scenario's expanded spec stream.
func WriteTrace(w io.Writer, s *Scenario, specs []ConnSpec) error {
	buf := append([]byte{}, traceMagic...)
	buf = wire.AppendString(buf, s.Name)
	buf = wire.AppendUvarint(buf, s.Seed)
	buf = wire.AppendUvarint(buf, uint64(s.Hours))
	buf = wire.AppendUvarint(buf, uint64(len(specs)))
	countryIdx := map[*CountryConfig]int{}
	for ci := range s.Countries {
		countryIdx[&s.Countries[ci]] = ci
	}
	prev := netsim.Time(0)
	for i := range specs {
		sp := &specs[i]
		ci, ok := countryIdx[sp.Country]
		if !ok {
			return fmt.Errorf("workload: trace: spec %d references a country outside the scenario", i)
		}
		if sp.Start < prev {
			return fmt.Errorf("workload: trace: spec %d arrives before its predecessor", i)
		}
		buf = wire.AppendUvarint(buf, sp.Seed)
		buf = wire.AppendUvarint(buf, uint64(sp.Start-prev))
		prev = sp.Start
		buf = wire.AppendUvarint(buf, uint64(ci))
		buf = wire.AppendUvarint(buf, uint64(sp.AS.ASN))
		var flags byte
		if sp.V6 {
			flags |= traceV6
		}
		if sp.UseTLS {
			flags |= traceTLS
		}
		if sp.Blocked {
			flags |= traceBlocked
		}
		if sp.SYNPayload {
			flags |= traceSYNPayload
		}
		if sp.CensorActive {
			flags |= traceCensorActive
		}
		if sp.KeywordTrigger {
			flags |= traceKeywordTrigger
		}
		if sp.IPIDZero {
			flags |= traceIPIDZero
		}
		buf = wire.AppendUvarint(buf, uint64(flags))
		buf = wire.AppendUvarint(buf, uint64(sp.Behavior))
		buf = wire.AppendUvarint(buf, uint64(sp.Style))
		buf = wire.AppendUvarint(buf, uint64(sp.Variant))
		buf = wire.AppendUvarint(buf, uint64(sp.TTLInit))
		buf = wire.AppendVarint(buf, int64(sp.HostIdx))
		buf = wire.AppendString(buf, specDomainName(sp))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

// ReadTrace parses a trace and resolves it against the scenario it was
// recorded from. The header must match the scenario's name, seed, and
// hours — a trace replayed against a different scenario would resolve
// countries, ASes, and domains to different objects.
func ReadTrace(r io.Reader, s *Scenario) ([]ConnSpec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("workload: trace: %w", err)
	}
	if len(data) < len(traceMagic)+4 || string(data[:len(traceMagic)]) != string(traceMagic) {
		return nil, fmt.Errorf("workload: trace: bad magic (not a TDTR trace)")
	}
	body, footer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(footer); got != want {
		return nil, fmt.Errorf("workload: trace: CRC mismatch (corrupt or truncated trace)")
	}
	d := wire.NewDecoder(body[len(traceMagic):])
	name := d.String(maxTraceName)
	seed := d.Uvarint()
	hours := int(d.Uvarint())
	count := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if name != s.Name || seed != s.Seed || hours != s.Hours {
		return nil, fmt.Errorf("workload: trace recorded from scenario %q seed=%d hours=%d; replay target is %q seed=%d hours=%d",
			name, seed, hours, s.Name, s.Seed, s.Hours)
	}
	if count < 0 || count > 1<<31 {
		return nil, fmt.Errorf("workload: trace: implausible record count %d", count)
	}
	asByASN := map[uint64]*geo.AS{}
	for _, as := range s.Geo.AllASes() {
		asByASN[uint64(as.ASN)] = as
	}
	specs := make([]ConnSpec, 0, count)
	prev := netsim.Time(0)
	for i := 0; i < count; i++ {
		var sp ConnSpec
		sp.Index = i
		sp.Seed = d.Uvarint()
		prev += netsim.Time(d.Uvarint())
		sp.Start = prev
		ci := int(d.Uvarint())
		asn := d.Uvarint()
		flags := byte(d.Uvarint())
		sp.Behavior = tcpsim.Behavior(d.Uvarint())
		sp.Style = CensorStyle(d.Uvarint())
		sp.Variant = int(d.Uvarint())
		ttl := uint8(d.Uvarint())
		sp.HostIdx = int(d.Varint())
		domain := d.String(1 << 12)
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("workload: trace record %d: %w", i, err)
		}
		if ci < 0 || ci >= len(s.Countries) {
			return nil, fmt.Errorf("workload: trace record %d: country index %d out of range", i, ci)
		}
		sp.Country = &s.Countries[ci]
		as, ok := asByASN[asn]
		if !ok {
			return nil, fmt.Errorf("workload: trace record %d: AS%d not in the scenario's address plan", i, asn)
		}
		if as.Country != sp.Country.Code {
			return nil, fmt.Errorf("workload: trace record %d: AS%d belongs to %s, spec says %s", i, asn, as.Country, sp.Country.Code)
		}
		sp.AS = as
		sp.V6 = flags&traceV6 != 0
		sp.UseTLS = flags&traceTLS != 0
		sp.Blocked = flags&traceBlocked != 0
		sp.SYNPayload = flags&traceSYNPayload != 0
		sp.CensorActive = flags&traceCensorActive != 0
		sp.KeywordTrigger = flags&traceKeywordTrigger != 0
		sp.IPIDZero = flags&traceIPIDZero != 0
		sp.TTLInit = ttl
		if domain != "" {
			sp.Domain = s.Universe.ByName(domain)
			if sp.Domain == nil {
				return nil, fmt.Errorf("workload: trace record %d: domain %q not in the scenario's universe", i, domain)
			}
		}
		if h := sp.Hour(); s.Hours > 0 && h >= s.Hours {
			return nil, fmt.Errorf("workload: trace record %d: arrival at hour %d beyond the scenario's %d hours", i, h, s.Hours)
		}
		specs = append(specs, sp)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("workload: trace: %w", err)
	}
	return specs, nil
}
