package workload

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"tamperdetect/internal/capture"
)

// StreamRun simulates a scenario's specs with bounded parallelism and
// yields the sampled capture records incrementally, in spec order,
// through Next — the streaming counterpart of Run. It satisfies the
// classification pipeline's Source contract, so a scenario can be
// classified while it is still being simulated, without ever holding
// the full []*capture.Connection in memory.
//
// At most ~4×workers simulated connections are buffered ahead of the
// consumer; a slow consumer throttles the simulation. The caller must
// either drain Next to io.EOF or call Close, or the producer goroutine
// leaks.
type StreamRun struct {
	// futures carries, in spec order, one single-use channel per spec;
	// each receives that spec's simulation result exactly once (nil
	// when the sampler did not select the connection).
	futures  chan chan *capture.Connection
	stop     chan struct{}
	stopOnce sync.Once
	// done is atomic because Close may run concurrently with a Next
	// still in flight: a cancelled pipeline returns to its caller —
	// who Closes the source — without waiting for a source goroutine
	// that may be blocked in Next. Channel operations are already safe
	// under that overlap; this flag must be too.
	done atomic.Bool
}

// Stream starts a streaming simulation of all the scenario's specs
// with the given parallelism (0 = GOMAXPROCS).
func (s *Scenario) Stream(workers int) *StreamRun {
	return s.StreamSpecs(s.Specs(), workers)
}

// StreamSpecs starts a streaming simulation of a prepared spec list.
func (s *Scenario) StreamSpecs(specs []ConnSpec, workers int) *StreamRun {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sr := &StreamRun{
		futures: make(chan chan *capture.Connection, 4*workers),
		stop:    make(chan struct{}),
	}
	go func() {
		defer close(sr.futures)
		sem := make(chan struct{}, workers)
		for i := range specs {
			f := make(chan *capture.Connection, 1)
			select {
			case sr.futures <- f: // bounded read-ahead: backpressure
			case <-sr.stop:
				return
			}
			select {
			case sem <- struct{}{}:
			case <-sr.stop:
				f <- nil // unblock a Next already waiting on f
				return
			}
			go func(i int) {
				defer func() { <-sem }()
				f <- SimulateConn(&specs[i], s.Universe, s.CaptureConfig, s.Impairments)
			}(i)
		}
	}()
	return sr
}

// Next returns the next sampled connection in spec order, skipping
// specs the sampler did not select, and io.EOF after the last spec.
// The sequence of non-nil records is exactly Run's output.
func (sr *StreamRun) Next() (*capture.Connection, error) {
	for {
		f, ok := <-sr.futures
		if !ok {
			sr.done.Store(true)
			return nil, io.EOF
		}
		if c := <-f; c != nil {
			return c, nil
		}
	}
}

// Close abandons the stream early: in-flight simulations finish, the
// producer stops scheduling new ones, and subsequent Next calls drain
// to io.EOF quickly. Close is idempotent, safe to defer alongside a
// full drain, and safe to call while another goroutine is blocked in
// Next (the cancelled-pipeline hand-off).
func (sr *StreamRun) Close() {
	sr.stopOnce.Do(func() { close(sr.stop) })
	if !sr.done.Load() {
		// Release buffered futures so their sim goroutines' sends (to
		// cap-1 channels) are garbage, not blockers, and observe the
		// producer's close. A concurrent Next draining the same channel
		// is fine: both receivers discard toward the same io.EOF.
		for range sr.futures {
		}
		sr.done.Store(true)
	}
}
