// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the repo's commands: pprof-compatible profiles for hunting
// allocation and CPU regressions in the hot paths (see scripts/bench.sh
// for the recorded throughput trajectory the profiles explain).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges a
// heap profile at memPath (if non-empty). The returned stop function
// must be called once, before process exit, to flush both; it is safe
// to call when both paths are empty (no-op).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialise final live-heap state
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
