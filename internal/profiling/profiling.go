// Package profiling wires the standard -cpuprofile/-memprofile flags
// (plus -blockprofile/-mutexprofile for contention hunting) into the
// repo's commands: pprof-compatible profiles for hunting allocation,
// CPU, and lock-contention regressions in the hot paths (see
// scripts/bench.sh for the recorded throughput trajectory the
// profiles explain).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config names the profile outputs; empty paths are skipped. Block
// and mutex profiling carry a runtime cost while armed, so they are
// activated only when their paths are set and disarmed again at stop.
type Config struct {
	CPUProfile   string // pprof CPU profile
	MemProfile   string // "allocs" profile with final live-heap state
	BlockProfile string // goroutine blocking (channel/select/lock waits)
	MutexProfile string // mutex contention
}

// Start begins the configured profiles and returns a stop function
// that must be called once, before process exit, to flush them all;
// it is safe to call with a zero Config (no-op).
func Start(cfg Config) (stop func() error, err error) {
	var cpuFile *os.File
	if cfg.CPUProfile != "" {
		cpuFile, err = os.Create(cfg.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if cfg.BlockProfile != "" {
		// Rate 1 records every blocking event; fine for offline runs,
		// too heavy to leave on in production.
		runtime.SetBlockProfileRate(1)
	}
	if cfg.MutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if cfg.MemProfile != "" {
			runtime.GC() // materialise final live-heap state
			if err := writeProfile("allocs", cfg.MemProfile); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		if cfg.BlockProfile != "" {
			err := writeProfile("block", cfg.BlockProfile)
			runtime.SetBlockProfileRate(0)
			if err != nil {
				return fmt.Errorf("blockprofile: %w", err)
			}
		}
		if cfg.MutexProfile != "" {
			err := writeProfile("mutex", cfg.MutexProfile)
			runtime.SetMutexProfileFraction(0)
			if err != nil {
				return fmt.Errorf("mutexprofile: %w", err)
			}
		}
		return nil
	}, nil
}

func writeProfile(name, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return pprof.Lookup(name).WriteTo(f, 0)
}
