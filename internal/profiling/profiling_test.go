package profiling

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestStartZeroConfigNoop(t *testing.T) {
	stop, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		CPUProfile:   filepath.Join(dir, "cpu.pprof"),
		MemProfile:   filepath.Join(dir, "mem.pprof"),
		BlockProfile: filepath.Join(dir, "block.pprof"),
		MutexProfile: filepath.Join(dir, "mutex.pprof"),
	}
	stop, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Generate a little of everything: allocation, blocking on a
	// channel, and mutex contention, so the profiles have content.
	var mu sync.Mutex
	ch := make(chan int)
	go func() {
		time.Sleep(time.Millisecond)
		ch <- 1
	}()
	<-ch
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				mu.Lock()
				time.Sleep(10 * time.Microsecond)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	_ = make([]byte, 1<<20)

	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cfg.CPUProfile, cfg.MemProfile, cfg.BlockProfile, cfg.MutexProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("missing profile %s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(Config{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err == nil {
		t.Fatal("bad cpu path did not error")
	}
}
