package fleet

// The chaos parity gate — the PR's acceptance test and the check.sh
// fleet gate. 20 simulated PoPs with distinct country mixes push
// per-epoch snapshots through a fault-injecting transport into a live
// popmerge handler; one PoP straggles past the quorum close. Despite
// drops, duplicates, truncations, 5xxs, retries, and the straggler,
// the merged report must be BYTE-IDENTICAL to the single-process run —
// and a deliberate re-push of an already-ACKed frame must change
// nothing.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// runChaosFleet drives every PoP through the merger under the given
// grade and returns the merger plus one saved frame for the dup test.
func runChaosFleet(t *testing.T, grade string) (*Merger, []byte) {
	t.Helper()
	popRecs, _ := fleetDataset(t)
	g, ok := ChaosGrade(grade)
	if !ok {
		t.Fatalf("unknown chaos grade %q", grade)
	}

	// Quorum 19: the epochs close once every on-time PoP has reported,
	// which is exactly what makes PoP 19 a straggler.
	m := newTestMerger(t, func(c *MergerConfig) { c.Quorum = 19 })
	mux := http.NewServeMux()
	for pat, h := range m.Handler() {
		mux.Handle(pat, h)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Aggregate fault and delivery stats across all 20 PoPs so a -v run
	// documents how much abuse the parity held under (EXPERIMENTS.md
	// quotes these).
	var statsMu sync.Mutex
	var totChaos ChaosStats
	var totPush PusherStats
	collect := func(c *ChaosTransport, p *Pusher) {
		statsMu.Lock()
		defer statsMu.Unlock()
		cs, ps := c.Stats(), p.Stats()
		totChaos.Requests += cs.Requests
		totChaos.DroppedRequests += cs.DroppedRequests
		totChaos.DroppedResponses += cs.DroppedResponses
		totChaos.Duplicates += cs.Duplicates
		totChaos.Truncated += cs.Truncated
		totChaos.Synth5xx += cs.Synth5xx
		totPush.Delivered += ps.Delivered
		totPush.Retries += ps.Retries
		totPush.Failed += ps.Failed
	}

	push := func(pop int) (*Pusher, *ChaosTransport) {
		chaos := NewChaosTransport(srv.Client().Transport, g, int64(1000+pop))
		p, err := NewPusher(PusherConfig{
			URL:         srv.URL,
			Client:      &http.Client{Transport: chaos},
			Timeout:     5 * time.Second,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  8 * time.Millisecond,
			MaxAttempts: 64,
			QueueLen:    16,
			Seed:        int64(pop),
		})
		if err != nil {
			t.Fatal(err)
		}
		return p, chaos
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// PoPs 0..18 push concurrently, each through its own seeded chaos
	// transport.
	var wg sync.WaitGroup
	for pop := 0; pop < 19; pop++ {
		wg.Add(1)
		go func(pop int) {
			defer wg.Done()
			p, chaos := push(pop)
			defer p.Close()
			defer collect(chaos, p)
			for _, f := range popFrames(t, "pop"+itoa(pop), popRecs[pop]) {
				if err := p.Push(f); err != nil {
					t.Errorf("pop %d: %v", pop, err)
					return
				}
			}
			if err := p.Flush(ctx); err != nil {
				t.Errorf("pop %d flush: %v", pop, err)
			}
			if st := p.Stats(); st.Failed != 0 {
				t.Errorf("pop %d lost %d frames under %s chaos", pop, st.Failed, grade)
			}
		}(pop)
	}
	wg.Wait()

	// The straggler pushes only after every epoch has closed.
	straggler, stragglerChaos := push(19)
	defer straggler.Close()
	stragglerFrames := popFrames(t, "pop19", popRecs[19])
	for _, f := range stragglerFrames {
		if err := straggler.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := straggler.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if st := straggler.Stats(); st.Failed != 0 {
		t.Fatalf("straggler lost %d frames", st.Failed)
	}

	collect(stragglerChaos, straggler)

	st := m.Stats()
	if st.LateMerged != int64(len(stragglerFrames)) {
		t.Errorf("LateMerged = %d, want %d (the straggler's epochs)", st.LateMerged, len(stragglerFrames))
	}
	if st.Rejected > 0 && g.Truncate == 0 {
		t.Errorf("%d frames rejected without truncation chaos", st.Rejected)
	}
	t.Logf("%s: wire: requests=%d dropped_req=%d dropped_resp=%d dup=%d truncated=%d 5xx=%d",
		grade, totChaos.Requests, totChaos.DroppedRequests, totChaos.DroppedResponses,
		totChaos.Duplicates, totChaos.Truncated, totChaos.Synth5xx)
	t.Logf("%s: client: delivered=%d retries=%d failed=%d; merger: accepted=%d duplicates=%d late_merged=%d rejected=%d",
		grade, totPush.Delivered, totPush.Retries, totPush.Failed,
		st.Accepted, st.Duplicates, st.LateMerged, st.Rejected)
	return m, stragglerFrames[0]
}

// fetchReport GETs /report from a handler-backed server.
func fetchReport(t *testing.T, m *Merger) string {
	t.Helper()
	mux := http.NewServeMux()
	for pat, h := range m.Handler() {
		mux.Handle(pat, h)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestChaosParity20PoPs is the gate, once per fault grade.
func TestChaosParity20PoPs(t *testing.T) {
	_, want := fleetDataset(t)
	for _, grade := range ChaosGradeNames() {
		t.Run(grade, func(t *testing.T) {
			m, ackedFrame := runChaosFleet(t, grade)
			if got := m.ReportBody(); got != want {
				t.Fatalf("merged report diverges from single-process run at %s",
					firstDiff(got, want))
			}
			if got := fetchReport(t, m); got != want {
				t.Fatal("/report body diverges from ReportBody")
			}

			// Simulated ACK loss: the client re-pushes a frame the
			// merger already merged. Verdict must be duplicate and no
			// counter may move.
			before := m.Stats()
			countsBefore := m.Status().Counts
			env, err := DecodeEnvelope(ackedFrame)
			if err != nil {
				t.Fatal(err)
			}
			if verdict, err := m.Ingest(env); err != nil || verdict != StatusDuplicate {
				t.Fatalf("re-push = %v, %v, want duplicate", verdict, err)
			}
			if got := m.ReportBody(); got != want {
				t.Fatal("duplicate re-push changed the report")
			}
			if got := m.Status().Counts; got != countsBefore {
				t.Fatalf("duplicate re-push changed pipeline counts: %+v vs %+v", got, countsBefore)
			}
			after := m.Stats()
			before.Duplicates++ // the only counter allowed to move
			if after != before {
				t.Fatalf("duplicate re-push moved merge counters: %+v vs %+v", after, before)
			}
		})
	}
}

// TestChaosTransportFaults sanity-checks the injector itself under the
// hostile grade: all fault kinds fire, and the server sees at least
// one duplicate delivery.
func TestChaosTransportFaults(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		got[string(body)]++
		mu.Unlock()
	}))
	defer srv.Close()

	g, _ := ChaosGrade("hostile")
	chaos := NewChaosTransport(srv.Client().Transport, g, 7)
	client := &http.Client{Transport: chaos}
	for i := 0; i < 200; i++ {
		payload := []byte("frame-" + itoa(i) + "-padding-so-truncation-has-room")
		req, _ := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader(payload))
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	st := chaos.Stats()
	if st.DroppedRequests == 0 || st.DroppedResponses == 0 || st.Duplicates == 0 ||
		st.Truncated == 0 || st.Synth5xx == 0 {
		t.Errorf("hostile grade left a fault kind unused: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	dupSeen := false
	for _, n := range got {
		if n > 1 {
			dupSeen = true
		}
	}
	if !dupSeen {
		t.Error("server never saw a duplicated delivery")
	}
}
