package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/telemetry"
	"tamperdetect/internal/trace"
)

// Merge-side span names. Both adopt the trace context carried by a v3
// frame, so the pusher's epoch span and these appear in one trace.
const (
	// SpanFleetValidate covers restoring the frame's payload into a
	// throwaway prototype (the reject-before-merge gate).
	SpanFleetValidate = "fleet.validate"
	// SpanFleetMerge covers folding the validated aggregate into the
	// global report under the merger lock.
	SpanFleetMerge = "fleet.merge"
)

// PushStatus is the merger's verdict on one frame. Every verdict is a
// protocol-level success (HTTP 200): the client must not retry any of
// them, because retrying is exactly what dedup makes harmless but
// pointless.
type PushStatus string

const (
	// StatusAccepted: a new (pop, epoch) frame, merged into the report.
	StatusAccepted PushStatus = "accepted"
	// StatusDuplicate: (pop, epoch) already merged — the frame changed
	// nothing. This is what an ACK-lost retransmission gets.
	StatusDuplicate PushStatus = "duplicate"
	// StatusLate: the epoch had already closed; the frame was merged
	// anyway (LateMerge policy) and surfaced in the status report.
	StatusLate PushStatus = "late"
	// StatusDropped: the epoch had already closed and the LateDrop
	// policy discarded the frame (also surfaced, never an error).
	StatusDropped PushStatus = "dropped"
)

// LatePolicy selects what happens to a frame for an already-closed
// epoch.
type LatePolicy int

const (
	// LateMerge folds stragglers in anyway — the report stays a pure
	// function of every distinct frame ever received (the chaos parity
	// gate depends on this being the default).
	LateMerge LatePolicy = iota
	// LateDrop discards stragglers, trading completeness for epoch
	// finality; drops are counted and visible in Status.
	LateDrop
)

// MergerConfig configures a Merger. Fresh is required and must build
// the same aggregator set the PoPs encode (NewFleetAggs on both sides).
type MergerConfig struct {
	Fresh func() analysis.Multi
	// Quorum closes an epoch once this many distinct PoPs have
	// contributed to it; 0 means epochs never close by quorum.
	Quorum int
	// EpochDeadline closes an epoch this long after its first frame
	// arrived; 0 means epochs never close by deadline.
	EpochDeadline time.Duration
	// Late selects the closed-epoch policy (default LateMerge).
	Late LatePolicy
	// StaleAfter marks a PoP stale in Status when it has not pushed
	// for this long (default 5 minutes).
	StaleAfter time.Duration
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
	// Tracer, when non-nil, records fleet.validate / fleet.merge spans
	// for every ingested frame. Spans adopt the frame's TraceContext
	// when it carries one (v3), so the pusher's epoch span and the
	// merge-side spans share a trace; v1/v2 frames fall back to the
	// merger's own trace ID. Rejected frames leave an event in the
	// tracer's flight recorder.
	Tracer *trace.Tracer
}

// MergerStats counts frame verdicts plus rejects (undecodable frames).
type MergerStats struct {
	Accepted    int64
	Duplicates  int64
	LateMerged  int64
	LateDropped int64
	Rejected    int64
}

// PoPStatus is one PoP's liveness row.
type PoPStatus struct {
	PoP       string    `json:"pop"`
	LastSeen  time.Time `json:"last_seen"`
	LastEpoch uint64    `json:"last_epoch"`
	Frames    int64     `json:"frames"`
	Stale     bool      `json:"stale"`
}

// EpochStatus is one epoch's progress row.
type EpochStatus struct {
	Epoch  uint64 `json:"epoch"`
	PoPs   int    `json:"pops"`
	Closed bool   `json:"closed"`
}

// Status is the merger's introspection snapshot (served at /v1/status).
type Status struct {
	Stats  MergerStats     `json:"stats"`
	Counts pipeline.Counts `json:"pipeline_counts"`
	PoPs   []PoPStatus     `json:"pops"`
	Epochs []EpochStatus   `json:"epochs"`
}

type popEpoch struct {
	pop   string
	epoch uint64
}

type epochState struct {
	pops    map[string]bool
	firstAt time.Time
	closed  bool
}

type popState struct {
	lastSeen  time.Time
	lastEpoch uint64
	frames    int64
}

// Merger is the epoch-idempotent heart of popmerge. All state sits
// behind one mutex: pushes are rare (one per PoP per epoch) and the
// global aggregate must merge serially anyway.
type Merger struct {
	cfg MergerConfig

	mu     sync.Mutex
	agg    analysis.Multi
	counts pipeline.Counts
	seen   map[popEpoch]bool
	epochs map[uint64]*epochState
	pops   map[string]*popState
	stats  MergerStats
}

// NewMerger builds a merger around cfg.Fresh.
func NewMerger(cfg MergerConfig) (*Merger, error) {
	if cfg.Fresh == nil {
		return nil, errors.New("fleet: MergerConfig.Fresh is required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.StaleAfter == 0 {
		cfg.StaleAfter = 5 * time.Minute
	}
	return &Merger{
		cfg:    cfg,
		agg:    cfg.Fresh(),
		seen:   map[popEpoch]bool{},
		epochs: map[uint64]*epochState{},
		pops:   map[string]*popState{},
	}, nil
}

// Ingest validates and merges one decoded frame. The payload is
// restored into a throwaway prototype first, so a corrupt or
// parameter-drifted frame returns an error without touching global
// state; only a fully-validated aggregate is merged. Duplicate
// (pop, epoch) frames are acknowledged and ignored — re-pushing after
// a lost ACK is a no-op by construction.
func (m *Merger) Ingest(env *Envelope) (PushStatus, error) {
	tmp := m.cfg.Fresh()
	valStart := time.Now().UnixNano()
	if err := analysis.RestoreSnapshot(env.Payload, tmp); err != nil {
		m.mu.Lock()
		m.stats.Rejected++
		m.mu.Unlock()
		m.cfg.Tracer.Flight().Record("ERROR", "fleet frame rejected",
			trace.A("pop", env.PoP), trace.A("epoch", env.Epoch), trace.A("err", err))
		return "", fmt.Errorf("fleet: restore %s/%d: %w", env.PoP, env.Epoch, err)
	}
	m.emitSpan(SpanFleetValidate, env, valStart, time.Now().UnixNano())

	mrgStart := time.Now().UnixNano()
	defer func() { m.emitSpan(SpanFleetMerge, env, mrgStart, time.Now().UnixNano()) }()
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	m.closeExpiredLocked(now)

	ps := m.pops[env.PoP]
	if ps == nil {
		ps = &popState{}
		m.pops[env.PoP] = ps
	}
	ps.lastSeen = now
	ps.frames++
	if env.Epoch > ps.lastEpoch {
		ps.lastEpoch = env.Epoch
	}

	key := popEpoch{pop: env.PoP, epoch: env.Epoch}
	if m.seen[key] {
		m.stats.Duplicates++
		return StatusDuplicate, nil
	}

	es := m.epochs[env.Epoch]
	if es == nil {
		es = &epochState{pops: map[string]bool{}, firstAt: now}
		m.epochs[env.Epoch] = es
	}
	late := es.closed
	if late && m.cfg.Late == LateDrop {
		// Dropped frames stay unseen: should the operator relax the
		// policy, a retransmission could still land.
		m.stats.LateDropped++
		return StatusDropped, nil
	}

	if err := m.agg.Merge(tmp); err != nil {
		// Unreachable when both sides share Fresh, but never corrupt
		// the global state silently.
		m.stats.Rejected++
		m.cfg.Tracer.Flight().Record("ERROR", "fleet merge failed",
			trace.A("pop", env.PoP), trace.A("epoch", env.Epoch), trace.A("err", err))
		return "", fmt.Errorf("fleet: merge %s/%d: %w", env.PoP, env.Epoch, err)
	}
	m.counts = m.counts.Add(env.Counts)
	m.seen[key] = true
	es.pops[env.PoP] = true
	if !es.closed && m.cfg.Quorum > 0 && len(es.pops) >= m.cfg.Quorum {
		es.closed = true
	}
	if late {
		m.stats.LateMerged++
		return StatusLate, nil
	}
	m.stats.Accepted++
	return StatusAccepted, nil
}

// emitSpan records one merge-side span on the shared ring, continuing
// the frame's trace when it carries one and parenting to the pusher's
// epoch span.
func (m *Merger) emitSpan(name string, env *Envelope, start, end int64) {
	t := m.cfg.Tracer
	if t == nil {
		return
	}
	traceID := env.Trace.TraceID
	if traceID == 0 {
		traceID = t.TraceID()
	}
	t.EmitShared(trace.SpanRec{
		TraceID: traceID, SpanID: t.NewSpanID(), Parent: env.Trace.SpanID,
		NameID: t.NameID(name), Start: start, Dur: end - start,
		Worker: -1, Shard: -1, Record: -1, Count: 1,
	})
}

// closeExpiredLocked applies the deadline policy lazily: any open
// epoch whose first frame is older than EpochDeadline closes now.
func (m *Merger) closeExpiredLocked(now time.Time) {
	if m.cfg.EpochDeadline <= 0 {
		return
	}
	for _, es := range m.epochs {
		if !es.closed && now.Sub(es.firstAt) >= m.cfg.EpochDeadline {
			es.closed = true
		}
	}
}

// ReportBody renders the continuously-updated global paper report —
// byte-comparable with analysis.RenderFleetReport over a
// single-process aggregate of the same records.
func (m *Merger) ReportBody() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return analysis.RenderFleetReport(m.agg)
}

// Stats returns the verdict counters.
func (m *Merger) Stats() MergerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Status returns the introspection snapshot, PoPs and epochs sorted.
func (m *Merger) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.cfg.Now()
	m.closeExpiredLocked(now)
	st := Status{Stats: m.stats, Counts: m.counts}
	for pop, ps := range m.pops {
		st.PoPs = append(st.PoPs, PoPStatus{
			PoP:       pop,
			LastSeen:  ps.lastSeen,
			LastEpoch: ps.lastEpoch,
			Frames:    ps.frames,
			Stale:     now.Sub(ps.lastSeen) > m.cfg.StaleAfter,
		})
	}
	sort.Slice(st.PoPs, func(i, j int) bool { return st.PoPs[i].PoP < st.PoPs[j].PoP })
	for epoch, es := range m.epochs {
		st.Epochs = append(st.Epochs, EpochStatus{Epoch: epoch, PoPs: len(es.pops), Closed: es.closed})
	}
	sort.Slice(st.Epochs, func(i, j int) bool { return st.Epochs[i].Epoch < st.Epochs[j].Epoch })
	return st
}

// RegisterMetrics exposes the merger's counters on reg.
func (m *Merger) RegisterMetrics(reg *telemetry.Registry) {
	stat := func(f func(MergerStats) int64) func() int64 {
		return func() int64 { return f(m.Stats()) }
	}
	reg.CounterFunc("tamperdetect_fleet_frames_total", telemetry.Label("verdict", "accepted"),
		"Fleet frames merged as new (pop, epoch) deltas.",
		stat(func(s MergerStats) int64 { return s.Accepted }))
	reg.CounterFunc("tamperdetect_fleet_frames_total", telemetry.Label("verdict", "duplicate"),
		"Fleet frames deduplicated by (pop, epoch).",
		stat(func(s MergerStats) int64 { return s.Duplicates }))
	reg.CounterFunc("tamperdetect_fleet_frames_total", telemetry.Label("verdict", "late_merged"),
		"Fleet frames merged after their epoch closed.",
		stat(func(s MergerStats) int64 { return s.LateMerged }))
	reg.CounterFunc("tamperdetect_fleet_frames_total", telemetry.Label("verdict", "late_dropped"),
		"Fleet frames dropped after their epoch closed.",
		stat(func(s MergerStats) int64 { return s.LateDropped }))
	reg.CounterFunc("tamperdetect_fleet_frames_total", telemetry.Label("verdict", "rejected"),
		"Fleet frames rejected as undecodable or incompatible.",
		stat(func(s MergerStats) int64 { return s.Rejected }))
	reg.GaugeFunc("tamperdetect_fleet_pops", "",
		"Distinct PoPs that have ever pushed a frame.",
		func() int64 { return int64(len(m.Status().PoPs)) })
}

// Handler returns the merge service's HTTP API:
//
//	POST /v1/push   one EncodeSnapshot frame; replies {"status": ...}
//	GET  /report    the global paper report (plain text)
//	GET  /v1/status liveness + epoch progress (JSON)
//
// Mount it alongside the telemetry endpoints via
// telemetry.NewServerWith.
func (m *Merger) Handler() map[string]http.Handler {
	return map[string]http.Handler{
		"/v1/push":   http.HandlerFunc(m.handlePush),
		"/report":    http.HandlerFunc(m.handleReport),
		"/v1/status": http.HandlerFunc(m.handleStatus),
	}
}

func (m *Merger) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxFrameBytes))
	if err != nil {
		m.mu.Lock()
		m.stats.Rejected++
		m.mu.Unlock()
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	env, err := DecodeEnvelope(body)
	if err != nil {
		m.mu.Lock()
		m.stats.Rejected++
		m.mu.Unlock()
		m.cfg.Tracer.Flight().Record("ERROR", "fleet frame undecodable", trace.A("err", err))
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	status, err := m.Ingest(env)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": string(status)})
}

func (m *Merger) handleReport(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, m.ReportBody())
}

func (m *Merger) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m.Status())
}
