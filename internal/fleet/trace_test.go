package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/trace"
)

// tracedPopFrames encodes one PoP's records as v3 per-epoch frames,
// emitting one epoch push span per frame on tr (the tamperscan -push
// shape) and returning the frames plus each frame's epoch span ID.
func tracedPopFrames(t testing.TB, tr *trace.Tracer, pop string, recs []analysis.Record) ([][]byte, []uint64) {
	t.Helper()
	byEpoch := map[uint64][]int{}
	maxEpoch := uint64(0)
	for i := range recs {
		e := uint64(recs[i].Hour / epochHours)
		byEpoch[e] = append(byEpoch[e], i)
		if e > maxEpoch {
			maxEpoch = e
		}
	}
	nameID := tr.NameID("push.epoch")
	var frames [][]byte
	var spans []uint64
	seq := uint64(0)
	for e := uint64(0); e <= maxEpoch; e++ {
		idx := byEpoch[e]
		if len(idx) == 0 {
			continue
		}
		agg := analysis.NewFleetAggs()
		for _, i := range idx {
			agg.Add(&recs[i])
		}
		spanID := tr.NewSpanID()
		start := time.Now().UnixNano()
		n := int64(len(idx))
		frame, err := EncodeSnapshotTraced(pop, e, seq,
			agg, pipeline.Counts{Decoded: n, Classified: n, Delivered: n},
			TraceContext{TraceID: tr.TraceID(), SpanID: spanID})
		if err != nil {
			t.Fatalf("encode %s epoch %d: %v", pop, e, err)
		}
		tr.EmitShared(trace.SpanRec{
			TraceID: tr.TraceID(), SpanID: spanID, Parent: tr.Root(),
			NameID: nameID, Start: start, Dur: time.Now().UnixNano() - start,
			Worker: -1, Shard: -1, Record: -1, Count: 1,
		})
		frames = append(frames, frame)
		spans = append(spans, spanID)
		seq++
	}
	return frames, spans
}

// TestFleetTraceContextPropagation is the cross-PoP tracing e2e: a
// traced pusher ships v3 frames through a faulty (lossy, seeded) chaos
// transport to a live popmerge handler, and the merger's validate and
// merge spans must land in the pusher's trace, parented to the exact
// epoch span that framed each push — one trace across the fleet hop,
// surviving retries, duplicates, and truncations.
func TestFleetTraceContextPropagation(t *testing.T) {
	pops, _ := fleetDataset(t)
	pushTracer := trace.New(trace.Config{TraceID: 0x7707, MaxProfile: 1 << 16})
	frames, epochSpans := tracedPopFrames(t, pushTracer, "ams01", pops[0])
	if len(frames) == 0 {
		t.Fatal("no frames")
	}

	mergeTracer := trace.New(trace.Config{
		TraceID: 0x9909, MaxProfile: 1 << 16, Flight: trace.NewFlight(64),
	})
	m := newTestMerger(t, func(cfg *MergerConfig) { cfg.Tracer = mergeTracer })
	mux := http.NewServeMux()
	for pattern, h := range m.Handler() {
		mux.Handle(pattern, h)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()

	grade, _ := ChaosGrade("lossy")
	p, err := NewPusher(PusherConfig{
		URL:         srv.URL,
		Client:      &http.Client{Transport: NewChaosTransport(nil, grade, 7)},
		Timeout:     2 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		MaxAttempts: 20,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range frames {
		if err := p.Push(frame); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if st := p.Stats(); st.Delivered != int64(len(frames)) || st.Failed != 0 {
		t.Fatalf("pusher stats %+v, want all %d delivered", st, len(frames))
	}

	// Every epoch span must have a validate and a merge child in the
	// pusher's trace, recorded on the merge side.
	children := map[uint64]map[string]int{}
	for _, s := range mergeTracer.TakeProfile() {
		if s.Name != SpanFleetValidate && s.Name != SpanFleetMerge {
			continue
		}
		if s.TraceID != 0x7707 {
			t.Fatalf("%s span carries trace %x, want the pusher's 7707", s.Name, s.TraceID)
		}
		if children[s.Parent] == nil {
			children[s.Parent] = map[string]int{}
		}
		children[s.Parent][s.Name]++
	}
	for i, spanID := range epochSpans {
		got := children[spanID]
		if got[SpanFleetValidate] == 0 || got[SpanFleetMerge] == 0 {
			t.Errorf("epoch frame %d (span %x): merge-side children = %v, want validate+merge", i, spanID, got)
		}
	}
}

// TestMergerTraceFallbackAndRejectFlight covers the non-v3 and failure
// edges: an untraced (v1/v2) frame still gets merge-side spans under
// the merger's own trace ID, and a corrupt payload leaves a structured
// event in the flight recorder instead of a span.
func TestMergerTraceFallbackAndRejectFlight(t *testing.T) {
	pops, _ := fleetDataset(t)
	fl := trace.NewFlight(16)
	tr := trace.New(trace.Config{TraceID: 0x5105, MaxProfile: 1 << 12, Flight: fl})
	m := newTestMerger(t, func(cfg *MergerConfig) { cfg.Tracer = tr })

	frames := popFrames(t, "lhr01", pops[1])
	env, err := DecodeEnvelope(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest(env); err != nil {
		t.Fatal(err)
	}
	spans := tr.TakeProfile()
	var names []string
	for _, s := range spans {
		if s.TraceID != 0x5105 {
			t.Fatalf("span %q trace = %x, want the merger's own 5105", s.Name, s.TraceID)
		}
		names = append(names, s.Name)
	}
	if len(names) != 2 {
		t.Fatalf("spans = %v, want [validate merge]", names)
	}

	bad := &Envelope{PoP: "lhr01", Epoch: 9, Payload: []byte{0xFF, 0xFF, 0xFF}}
	if _, err := m.Ingest(bad); err == nil {
		t.Fatal("corrupt payload ingested cleanly")
	}
	evs := fl.Events()
	if len(evs) != 1 || evs[0].Msg != "fleet frame rejected" {
		t.Fatalf("flight events = %+v, want one rejection", evs)
	}
	var pop bool
	for _, a := range evs[0].Attrs {
		if a.Key == "pop" && a.Value == "lhr01" {
			pop = true
		}
	}
	if !pop {
		t.Errorf("rejection event missing pop attr: %+v", evs[0])
	}
}
