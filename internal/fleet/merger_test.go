package fleet

import (
	"math/rand"
	"testing"
	"time"
)

// TestMergerIdempotent: re-ingesting the same frame — the ACK-lost
// retransmission — changes nothing, not the report and not the
// pipeline counts.
func TestMergerIdempotent(t *testing.T) {
	pops, _ := fleetDataset(t)
	m := newTestMerger(t, nil)
	frames := popFrames(t, "pop00", pops[0])

	for _, f := range frames {
		env, err := DecodeEnvelope(f)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := m.Ingest(env); err != nil || st != StatusAccepted {
			t.Fatalf("first ingest = %v, %v", st, err)
		}
	}
	report := m.ReportBody()
	countsBefore := m.Status().Counts

	for round := 0; round < 3; round++ {
		for _, f := range frames {
			env, _ := DecodeEnvelope(f)
			if st, err := m.Ingest(env); err != nil || st != StatusDuplicate {
				t.Fatalf("replay ingest = %v, %v", st, err)
			}
		}
	}
	if got := m.ReportBody(); got != report {
		t.Errorf("replay changed the report at %s", firstDiff(got, report))
	}
	if got := m.Status().Counts; got != countsBefore {
		t.Errorf("replay changed pipeline counts: %+v vs %+v", got, countsBefore)
	}
	st := m.Stats()
	if st.Accepted != int64(len(frames)) || st.Duplicates != int64(3*len(frames)) {
		t.Errorf("stats = %+v", st)
	}
}

// TestMergerOrderAndDuplicationInvariance is the distributed version
// of the algebra's multiset-determinism property: any arrival order of
// any frame multiset with any duplicate pattern yields byte-identical
// reports, equal to the single-process render.
func TestMergerOrderAndDuplicationInvariance(t *testing.T) {
	pops, want := fleetDataset(t)
	var frames [][]byte
	for pop := range pops {
		frames = append(frames, popFrames(t, "pop"+itoa(pop), pops[pop])...)
	}

	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		order := rng.Perm(len(frames))
		m := newTestMerger(t, nil)
		for _, i := range order {
			env, err := DecodeEnvelope(frames[i])
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Ingest(env); err != nil {
				t.Fatal(err)
			}
			// Random duplicate injection mid-stream.
			if rng.Float64() < 0.3 {
				dup := order[rng.Intn(len(order))]
				env, _ := DecodeEnvelope(frames[dup])
				if _, err := m.Ingest(env); err != nil {
					t.Fatal(err)
				}
			}
		}
		if got := m.ReportBody(); got != want {
			t.Fatalf("trial %d: merged report diverges from single-process at %s",
				trial, firstDiff(got, want))
		}
	}
}

// TestMergerEpochClose covers both close policies: quorum and
// deadline, with both straggler treatments.
func TestMergerEpochClose(t *testing.T) {
	pops, _ := fleetDataset(t)
	frameFor := func(pop int) *Envelope {
		frames := popFrames(t, "pop"+itoa(pop), pops[pop])
		env, err := DecodeEnvelope(frames[0]) // epoch 0
		if err != nil {
			t.Fatal(err)
		}
		return env
	}

	t.Run("quorum+merge", func(t *testing.T) {
		m := newTestMerger(t, func(c *MergerConfig) { c.Quorum = 2 })
		for pop := 0; pop < 2; pop++ {
			if st, _ := m.Ingest(frameFor(pop)); st != StatusAccepted {
				t.Fatalf("pop %d: %v", pop, st)
			}
		}
		if st, _ := m.Ingest(frameFor(2)); st != StatusLate {
			t.Errorf("straggler after quorum = %v, want late", st)
		}
		if got := m.Stats().LateMerged; got != 1 {
			t.Errorf("LateMerged = %d", got)
		}
	})

	t.Run("quorum+drop", func(t *testing.T) {
		m := newTestMerger(t, func(c *MergerConfig) { c.Quorum = 2; c.Late = LateDrop })
		for pop := 0; pop < 2; pop++ {
			m.Ingest(frameFor(pop))
		}
		report := m.ReportBody()
		if st, _ := m.Ingest(frameFor(2)); st != StatusDropped {
			t.Errorf("straggler = %v, want dropped", st)
		}
		if got := m.ReportBody(); got != report {
			t.Error("dropped frame changed the report")
		}
		if got := m.Stats().LateDropped; got != 1 {
			t.Errorf("LateDropped = %d", got)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		now := time.Unix(1000, 0)
		m := newTestMerger(t, func(c *MergerConfig) {
			c.EpochDeadline = 10 * time.Minute
			c.Now = func() time.Time { return now }
		})
		if st, _ := m.Ingest(frameFor(0)); st != StatusAccepted {
			t.Fatal("first frame not accepted")
		}
		now = now.Add(11 * time.Minute)
		if st, _ := m.Ingest(frameFor(1)); st != StatusLate {
			t.Errorf("post-deadline frame = %v, want late", st)
		}
		epochs := m.Status().Epochs
		if len(epochs) != 1 || !epochs[0].Closed {
			t.Errorf("epoch status = %+v", epochs)
		}
	})
}

// TestMergerRejectsCorruptPayload: a frame with a valid envelope but a
// broken payload must fail without touching global state.
func TestMergerRejectsCorruptPayload(t *testing.T) {
	pops, _ := fleetDataset(t)
	m := newTestMerger(t, nil)
	frames := popFrames(t, "pop00", pops[0])
	env, err := DecodeEnvelope(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	good := m.ReportBody()

	bad := *env
	bad.Payload = env.Payload[:len(env.Payload)/2]
	if _, err := m.Ingest(&bad); err == nil {
		t.Fatal("corrupt payload accepted")
	}
	if got := m.ReportBody(); got != good {
		t.Error("rejected frame changed the report")
	}
	if got := m.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d", got)
	}
	// The intact original must still be mergeable afterwards.
	if st, err := m.Ingest(env); err != nil || st != StatusAccepted {
		t.Errorf("intact retry after reject = %v, %v", st, err)
	}
}

// TestMergerLiveness: PoPs go stale when silent past StaleAfter.
func TestMergerLiveness(t *testing.T) {
	pops, _ := fleetDataset(t)
	now := time.Unix(5000, 0)
	m := newTestMerger(t, func(c *MergerConfig) {
		c.StaleAfter = time.Minute
		c.Now = func() time.Time { return now }
	})
	frames := popFrames(t, "ams01", pops[0])
	env, _ := DecodeEnvelope(frames[0])
	m.Ingest(env)

	st := m.Status()
	if len(st.PoPs) != 1 || st.PoPs[0].Stale {
		t.Fatalf("fresh pop status = %+v", st.PoPs)
	}
	now = now.Add(2 * time.Minute)
	st = m.Status()
	if !st.PoPs[0].Stale {
		t.Errorf("silent pop not marked stale: %+v", st.PoPs[0])
	}
}
