// Package fleet is the distributed-aggregation layer: it ships each
// PoP's per-epoch aggregator snapshot to a central merge service and
// folds the frames back into the global paper report. The paper's
// rollup across ~285 PoPs is modeled end-to-end — a versioned wire
// envelope (this file), an epoch-idempotent merger (merger.go), a
// retrying push client (client.go), and a fault-injecting transport
// for chaos testing the whole path (chaos.go).
//
// The robustness contract is inherited from the aggregator algebra:
// snapshots are per-epoch deltas, merging is associative, commutative,
// and — via (pop, epoch) deduplication — idempotent, so the merged
// report is a pure function of the set of distinct frames, whatever
// the duplicate pattern, retry storm, or arrival order the network
// imposes.
package fleet

import (
	"fmt"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/wire"
)

// Wire framing constants.
const (
	magic   = "TDSNAP"
	version = 1

	// MaxFrameBytes bounds a decoded envelope (and hence the HTTP
	// request body the merger will read).
	MaxFrameBytes = 64 << 20

	// maxPoPName bounds the PoP identifier string.
	maxPoPName = 256
)

// Envelope is one decoded push frame: which PoP, which collection
// epoch, a per-PoP monotone sequence number (retransmissions reuse
// it), the epoch's pipeline counter deltas, and the aggregator
// snapshot payload (still encoded; the merger restores it into a
// prototype it constructs itself).
type Envelope struct {
	PoP     string
	Epoch   uint64
	Seq     uint64
	Counts  pipeline.Counts
	Payload []byte
}

// EncodeSnapshot frames one per-epoch delta: the aggregator snapshot
// plus the epoch's pipeline counter movement, addressed (pop, epoch,
// seq).
func EncodeSnapshot(pop string, epoch, seq uint64, agg analysis.Aggregator, counts pipeline.Counts) ([]byte, error) {
	if pop == "" || len(pop) > maxPoPName {
		return nil, fmt.Errorf("fleet: invalid pop name %q", pop)
	}
	payload, err := analysis.AppendSnapshot(nil, agg)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode snapshot: %w", err)
	}
	b := make([]byte, 0, len(magic)+32+len(payload))
	b = append(b, magic...)
	b = wire.AppendUvarint(b, version)
	b = wire.AppendString(b, pop)
	b = wire.AppendUvarint(b, epoch)
	b = wire.AppendUvarint(b, seq)
	b = counts.AppendWire(b)
	b = wire.AppendBytes(b, payload)
	return b, nil
}

// DecodeEnvelope strictly decodes one frame from untrusted bytes. The
// payload is returned still encoded (it aliases data) — restoring it
// into an aggregator is the merger's job, so a frame with a valid
// envelope but a corrupt payload still fails before touching global
// state.
func DecodeEnvelope(data []byte) (*Envelope, error) {
	if len(data) > MaxFrameBytes {
		return nil, fmt.Errorf("fleet: frame of %d bytes exceeds limit %d", len(data), MaxFrameBytes)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("fleet: bad frame magic")
	}
	d := wire.NewDecoder(data[len(magic):])
	if v := d.Uvarint(); d.Err() == nil && v != version {
		return nil, fmt.Errorf("fleet: unsupported frame version %d (want %d)", v, version)
	}
	env := &Envelope{
		PoP:   d.String(maxPoPName),
		Epoch: d.Uvarint(),
		Seq:   d.Uvarint(),
	}
	var err error
	env.Counts, err = pipeline.DecodeCounts(d)
	if err != nil {
		return nil, fmt.Errorf("fleet: decode frame: %w", err)
	}
	env.Payload = d.Bytes(MaxFrameBytes)
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("fleet: decode frame: %w", err)
	}
	if env.PoP == "" {
		return nil, fmt.Errorf("fleet: frame missing pop name")
	}
	return env, nil
}
