// Package fleet is the distributed-aggregation layer: it ships each
// PoP's per-epoch aggregator snapshot to a central merge service and
// folds the frames back into the global paper report. The paper's
// rollup across ~285 PoPs is modeled end-to-end — a versioned wire
// envelope (this file), an epoch-idempotent merger (merger.go), a
// retrying push client (client.go), and a fault-injecting transport
// for chaos testing the whole path (chaos.go).
//
// The robustness contract is inherited from the aggregator algebra:
// snapshots are per-epoch deltas, merging is associative, commutative,
// and — via (pop, epoch) deduplication — idempotent, so the merged
// report is a pure function of the set of distinct frames, whatever
// the duplicate pattern, retry storm, or arrival order the network
// imposes.
package fleet

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/wire"
)

// Wire framing constants. Two frame versions are live: v1 carries the
// snapshot payload raw; v2 carries it flate-compressed, prefixed with
// its raw length. The encoder emits whichever is smaller (tiny or
// incompressible snapshots stay v1), the decoder accepts both, so a
// fleet can mix old and new binaries mid-upgrade.
const (
	magic        = "TDSNAP"
	versionRaw   = 1
	versionFlate = 2

	// MaxFrameBytes bounds a decoded envelope (and hence the HTTP
	// request body the merger will read).
	MaxFrameBytes = 64 << 20

	// maxPoPName bounds the PoP identifier string.
	maxPoPName = 256
)

// Envelope is one decoded push frame: which PoP, which collection
// epoch, a per-PoP monotone sequence number (retransmissions reuse
// it), the epoch's pipeline counter deltas, and the aggregator
// snapshot payload (still encoded; the merger restores it into a
// prototype it constructs itself).
type Envelope struct {
	PoP     string
	Epoch   uint64
	Seq     uint64
	Counts  pipeline.Counts
	Payload []byte
}

// EncodeSnapshot frames one per-epoch delta: the aggregator snapshot
// plus the epoch's pipeline counter movement, addressed (pop, epoch,
// seq).
func EncodeSnapshot(pop string, epoch, seq uint64, agg analysis.Aggregator, counts pipeline.Counts) ([]byte, error) {
	if pop == "" || len(pop) > maxPoPName {
		return nil, fmt.Errorf("fleet: invalid pop name %q", pop)
	}
	payload, err := analysis.AppendSnapshot(nil, agg)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode snapshot: %w", err)
	}
	ver, body := uint64(versionRaw), payload
	if cz := deflateBytes(payload); cz != nil && len(cz) < len(payload) {
		ver, body = versionFlate, cz
	}
	b := make([]byte, 0, len(magic)+40+len(body))
	b = append(b, magic...)
	b = wire.AppendUvarint(b, ver)
	b = wire.AppendString(b, pop)
	b = wire.AppendUvarint(b, epoch)
	b = wire.AppendUvarint(b, seq)
	b = counts.AppendWire(b)
	if ver == versionFlate {
		b = wire.AppendUvarint(b, uint64(len(payload)))
	}
	b = wire.AppendBytes(b, body)
	return b, nil
}

// deflateBytes flate-compresses p, or returns nil when compression is
// unavailable for the input (callers then fall back to a raw frame).
func deflateBytes(p []byte) []byte {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil
	}
	if _, err := zw.Write(p); err != nil {
		return nil
	}
	if err := zw.Close(); err != nil {
		return nil
	}
	return buf.Bytes()
}

// DecodeEnvelope strictly decodes one frame from untrusted bytes. The
// payload is returned still encoded — aliasing data for v1 frames,
// freshly inflated for v2 — and restoring it into an aggregator is the
// merger's job, so a frame with a valid envelope but a corrupt payload
// still fails before touching global state. Decompression is bounded:
// a v2 frame must declare a raw length within MaxFrameBytes and its
// flate stream must inflate to exactly that many bytes.
func DecodeEnvelope(data []byte) (*Envelope, error) {
	if len(data) > MaxFrameBytes {
		return nil, fmt.Errorf("fleet: frame of %d bytes exceeds limit %d", len(data), MaxFrameBytes)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("fleet: bad frame magic")
	}
	d := wire.NewDecoder(data[len(magic):])
	ver := d.Uvarint()
	if d.Err() == nil && ver != versionRaw && ver != versionFlate {
		return nil, fmt.Errorf("fleet: unsupported frame version %d (want %d or %d)", ver, versionRaw, versionFlate)
	}
	env := &Envelope{
		PoP:   d.String(maxPoPName),
		Epoch: d.Uvarint(),
		Seq:   d.Uvarint(),
	}
	var err error
	env.Counts, err = pipeline.DecodeCounts(d)
	if err != nil {
		return nil, fmt.Errorf("fleet: decode frame: %w", err)
	}
	var rawLen uint64
	if ver == versionFlate {
		rawLen = d.Uvarint()
		if d.Err() == nil && rawLen > MaxFrameBytes {
			return nil, fmt.Errorf("fleet: compressed payload declares %d raw bytes, limit %d", rawLen, MaxFrameBytes)
		}
	}
	body := d.Bytes(MaxFrameBytes)
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("fleet: decode frame: %w", err)
	}
	if env.PoP == "" {
		return nil, fmt.Errorf("fleet: frame missing pop name")
	}
	if ver == versionRaw {
		env.Payload = body
		return env, nil
	}
	zr := flate.NewReader(bytes.NewReader(body))
	payload := make([]byte, rawLen)
	if _, err := io.ReadFull(zr, payload); err != nil {
		return nil, fmt.Errorf("fleet: inflate payload: %w", err)
	}
	if n, _ := io.CopyN(io.Discard, zr, 1); n != 0 {
		return nil, fmt.Errorf("fleet: compressed payload longer than declared %d bytes", rawLen)
	}
	env.Payload = payload
	return env, nil
}
