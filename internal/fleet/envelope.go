// Package fleet is the distributed-aggregation layer: it ships each
// PoP's per-epoch aggregator snapshot to a central merge service and
// folds the frames back into the global paper report. The paper's
// rollup across ~285 PoPs is modeled end-to-end — a versioned wire
// envelope (this file), an epoch-idempotent merger (merger.go), a
// retrying push client (client.go), and a fault-injecting transport
// for chaos testing the whole path (chaos.go).
//
// The robustness contract is inherited from the aggregator algebra:
// snapshots are per-epoch deltas, merging is associative, commutative,
// and — via (pop, epoch) deduplication — idempotent, so the merged
// report is a pure function of the set of distinct frames, whatever
// the duplicate pattern, retry storm, or arrival order the network
// imposes.
package fleet

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/wire"
)

// Wire framing constants. Three frame versions are live: v1 carries
// the snapshot payload raw; v2 carries it flate-compressed, prefixed
// with its raw length; v3 adds a trace context (the pusher's trace ID
// and epoch span) plus a flags word whose bit 0 selects flate, so one
// version covers both payload encodings going forward. The v1/v2
// encoder emits whichever is smaller (tiny or incompressible snapshots
// stay v1), the traced encoder always emits v3, and the decoder
// accepts all three, so a fleet can mix old and new binaries
// mid-upgrade.
const (
	magic         = "TDSNAP"
	versionRaw    = 1
	versionFlate  = 2
	versionTraced = 3

	// flagFlate marks a v3 payload as flate-compressed.
	flagFlate = 1 << 0

	// MaxFrameBytes bounds a decoded envelope (and hence the HTTP
	// request body the merger will read).
	MaxFrameBytes = 64 << 20

	// maxPoPName bounds the PoP identifier string.
	maxPoPName = 256
)

// TraceContext is the distributed-tracing context a v3 frame carries
// across the push boundary: the pushing run's trace ID and the span ID
// of its epoch push span. The merger parents its validate/merge spans
// to SpanID so one trace covers both sides of the hop.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Zero reports whether the context carries no trace (v1/v2 frames, or
// an untraced pusher).
func (tc TraceContext) Zero() bool { return tc.TraceID == 0 && tc.SpanID == 0 }

// Envelope is one decoded push frame: which PoP, which collection
// epoch, a per-PoP monotone sequence number (retransmissions reuse
// it), the epoch's pipeline counter deltas, the pusher's trace context
// (zero for v1/v2 frames), and the aggregator snapshot payload (still
// encoded; the merger restores it into a prototype it constructs
// itself).
type Envelope struct {
	PoP     string
	Epoch   uint64
	Seq     uint64
	Counts  pipeline.Counts
	Trace   TraceContext
	Payload []byte
}

// EncodeSnapshot frames one per-epoch delta: the aggregator snapshot
// plus the epoch's pipeline counter movement, addressed (pop, epoch,
// seq).
func EncodeSnapshot(pop string, epoch, seq uint64, agg analysis.Aggregator, counts pipeline.Counts) ([]byte, error) {
	if pop == "" || len(pop) > maxPoPName {
		return nil, fmt.Errorf("fleet: invalid pop name %q", pop)
	}
	payload, err := analysis.AppendSnapshot(nil, agg)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode snapshot: %w", err)
	}
	ver, body := uint64(versionRaw), payload
	if cz := deflateBytes(payload); cz != nil && len(cz) < len(payload) {
		ver, body = versionFlate, cz
	}
	b := make([]byte, 0, len(magic)+40+len(body))
	b = append(b, magic...)
	b = wire.AppendUvarint(b, ver)
	b = wire.AppendString(b, pop)
	b = wire.AppendUvarint(b, epoch)
	b = wire.AppendUvarint(b, seq)
	b = counts.AppendWire(b)
	if ver == versionFlate {
		b = wire.AppendUvarint(b, uint64(len(payload)))
	}
	b = wire.AppendBytes(b, body)
	return b, nil
}

// EncodeSnapshotTraced frames one per-epoch delta as a v3 frame
// carrying the pusher's trace context, so the merger's validate and
// merge spans join the pusher's epoch span in one trace. A zero
// TraceContext is legal (the frame is v3 but untraced). Payload
// compression matches EncodeSnapshot: flate when it wins, raw
// otherwise, signalled in the flags word.
func EncodeSnapshotTraced(pop string, epoch, seq uint64, agg analysis.Aggregator, counts pipeline.Counts, tc TraceContext) ([]byte, error) {
	if pop == "" || len(pop) > maxPoPName {
		return nil, fmt.Errorf("fleet: invalid pop name %q", pop)
	}
	payload, err := analysis.AppendSnapshot(nil, agg)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode snapshot: %w", err)
	}
	flags, body := uint64(0), payload
	if cz := deflateBytes(payload); cz != nil && len(cz) < len(payload) {
		flags, body = flagFlate, cz
	}
	b := make([]byte, 0, len(magic)+64+len(body))
	b = append(b, magic...)
	b = wire.AppendUvarint(b, versionTraced)
	b = wire.AppendString(b, pop)
	b = wire.AppendUvarint(b, epoch)
	b = wire.AppendUvarint(b, seq)
	b = counts.AppendWire(b)
	b = wire.AppendUvarint(b, tc.TraceID)
	b = wire.AppendUvarint(b, tc.SpanID)
	b = wire.AppendUvarint(b, flags)
	if flags&flagFlate != 0 {
		b = wire.AppendUvarint(b, uint64(len(payload)))
	}
	b = wire.AppendBytes(b, body)
	return b, nil
}

// deflateBytes flate-compresses p, or returns nil when compression is
// unavailable for the input (callers then fall back to a raw frame).
func deflateBytes(p []byte) []byte {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil
	}
	if _, err := zw.Write(p); err != nil {
		return nil
	}
	if err := zw.Close(); err != nil {
		return nil
	}
	return buf.Bytes()
}

// DecodeEnvelope strictly decodes one frame from untrusted bytes. The
// payload is returned still encoded — aliasing data for v1 frames,
// freshly inflated for v2 — and restoring it into an aggregator is the
// merger's job, so a frame with a valid envelope but a corrupt payload
// still fails before touching global state. Decompression is bounded:
// a compressed frame (v2, or v3 with the flate flag) must declare a
// raw length within MaxFrameBytes and its flate stream must inflate to
// exactly that many bytes.
func DecodeEnvelope(data []byte) (*Envelope, error) {
	if len(data) > MaxFrameBytes {
		return nil, fmt.Errorf("fleet: frame of %d bytes exceeds limit %d", len(data), MaxFrameBytes)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("fleet: bad frame magic")
	}
	d := wire.NewDecoder(data[len(magic):])
	ver := d.Uvarint()
	if d.Err() == nil && ver != versionRaw && ver != versionFlate && ver != versionTraced {
		return nil, fmt.Errorf("fleet: unsupported frame version %d (want %d..%d)", ver, versionRaw, versionTraced)
	}
	env := &Envelope{
		PoP:   d.String(maxPoPName),
		Epoch: d.Uvarint(),
		Seq:   d.Uvarint(),
	}
	var err error
	env.Counts, err = pipeline.DecodeCounts(d)
	if err != nil {
		return nil, fmt.Errorf("fleet: decode frame: %w", err)
	}
	compressed := ver == versionFlate
	if ver == versionTraced {
		env.Trace.TraceID = d.Uvarint()
		env.Trace.SpanID = d.Uvarint()
		flags := d.Uvarint()
		if d.Err() == nil && flags&^uint64(flagFlate) != 0 {
			return nil, fmt.Errorf("fleet: frame carries unknown flags %#x", flags)
		}
		compressed = flags&flagFlate != 0
	}
	var rawLen uint64
	if compressed {
		rawLen = d.Uvarint()
		if d.Err() == nil && rawLen > MaxFrameBytes {
			return nil, fmt.Errorf("fleet: compressed payload declares %d raw bytes, limit %d", rawLen, MaxFrameBytes)
		}
	}
	body := d.Bytes(MaxFrameBytes)
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("fleet: decode frame: %w", err)
	}
	if env.PoP == "" {
		return nil, fmt.Errorf("fleet: frame missing pop name")
	}
	if !compressed {
		env.Payload = body
		return env, nil
	}
	zr := flate.NewReader(bytes.NewReader(body))
	payload := make([]byte, rawLen)
	if _, err := io.ReadFull(zr, payload); err != nil {
		return nil, fmt.Errorf("fleet: inflate payload: %w", err)
	}
	if n, _ := io.CopyN(io.Discard, zr, 1); n != 0 {
		return nil, fmt.Errorf("fleet: compressed payload longer than declared %d bytes", rawLen)
	}
	env.Payload = payload
	return env, nil
}
