package fleet

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ChaosConfig is one fault grade for the push path, mirroring the
// data-plane grades in internal/faults: independent per-request
// probabilities for each failure mode, applied by ChaosTransport.
type ChaosConfig struct {
	Name string
	// DropRequest loses the request before it reaches the server.
	DropRequest float64
	// DropResponse delivers the request but loses the response — the
	// ACK-lost case that makes (pop, epoch) dedup mandatory.
	DropResponse float64
	// Duplicate delivers the request twice.
	Duplicate float64
	// Truncate delivers a prefix of the body, which the merger must
	// reject cleanly (the client then retries the intact frame).
	Truncate float64
	// Err5xx synthesizes a 503 without delivering.
	Err5xx float64
	// MaxDelay sleeps a uniform random duration up to this before
	// delivery.
	MaxDelay time.Duration
}

// chaosGrades mirrors the faults.Grade naming scheme: clean, lossy,
// hostile.
var chaosGrades = map[string]ChaosConfig{
	"clean": {Name: "clean"},
	"lossy": {
		Name:        "lossy",
		DropRequest: 0.15, DropResponse: 0.10, Duplicate: 0.10,
		Truncate: 0.05, Err5xx: 0.10, MaxDelay: 2 * time.Millisecond,
	},
	"hostile": {
		Name:        "hostile",
		DropRequest: 0.30, DropResponse: 0.20, Duplicate: 0.20,
		Truncate: 0.15, Err5xx: 0.20, MaxDelay: 5 * time.Millisecond,
	},
}

// ChaosGrade returns a named fault grade.
func ChaosGrade(name string) (ChaosConfig, bool) {
	g, ok := chaosGrades[name]
	return g, ok
}

// ChaosGradeNames lists the grades in severity order.
func ChaosGradeNames() []string { return []string{"clean", "lossy", "hostile"} }

// errChaosDrop is the injected network failure.
var errChaosDrop = errors.New("fleet: chaos transport dropped the exchange")

// ChaosStats counts injected faults.
type ChaosStats struct {
	Requests, DroppedRequests, DroppedResponses, Duplicates, Truncated, Synth5xx int64
}

// ChaosTransport wraps an http.RoundTripper with seeded fault
// injection. Faults compose per request in a fixed order (delay, drop
// request, 5xx, truncate, deliver, duplicate, drop response), and the
// RNG is consumed in that same order, so a given (seed, request
// sequence) replays the identical fault schedule — the chaos parity
// gate is deterministic, not merely probable.
type ChaosTransport struct {
	next http.RoundTripper
	cfg  ChaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats ChaosStats
}

// NewChaosTransport wraps next (nil means http.DefaultTransport) with
// the grade's faults under the given seed.
func NewChaosTransport(next http.RoundTripper, cfg ChaosConfig, seed int64) *ChaosTransport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &ChaosTransport{next: next, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns the injected-fault counters.
func (t *ChaosTransport) Stats() ChaosStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// plan is one request's pre-rolled fault schedule.
type plan struct {
	delay                          time.Duration
	dropReq, err5xx, dup, dropResp bool
	truncateAt                     int // -1: intact
}

// RoundTrip applies the fault schedule to one exchange.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}

	// Roll the whole schedule up front under one lock so concurrent
	// PoPs (each with its own transport) stay deterministic.
	t.mu.Lock()
	t.stats.Requests++
	p := plan{truncateAt: -1}
	if t.cfg.MaxDelay > 0 {
		p.delay = time.Duration(t.rng.Int63n(int64(t.cfg.MaxDelay) + 1))
	}
	p.dropReq = t.rng.Float64() < t.cfg.DropRequest
	p.err5xx = t.rng.Float64() < t.cfg.Err5xx
	if t.rng.Float64() < t.cfg.Truncate && len(body) > 1 {
		p.truncateAt = 1 + t.rng.Intn(len(body)-1)
	}
	p.dup = t.rng.Float64() < t.cfg.Duplicate
	p.dropResp = t.rng.Float64() < t.cfg.DropResponse
	switch {
	case p.dropReq:
		t.stats.DroppedRequests++
	case p.err5xx:
		t.stats.Synth5xx++
	default:
		if p.truncateAt >= 0 {
			t.stats.Truncated++
		}
		if p.dup {
			t.stats.Duplicates++
		}
		if p.dropResp {
			t.stats.DroppedResponses++
		}
	}
	t.mu.Unlock()

	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	if p.dropReq {
		return nil, errChaosDrop
	}
	if p.err5xx {
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (injected)",
			Body:       io.NopCloser(bytes.NewReader(nil)),
			Header:     http.Header{},
			Request:    req,
		}, nil
	}

	delivered := body
	if p.truncateAt >= 0 && p.truncateAt < len(body) {
		delivered = body[:p.truncateAt]
	}
	resp, err := t.deliver(req, delivered)
	if p.dup {
		// The duplicate carries the intact body: this is the retry
		// storm case where the network replays a frame the merger
		// already ACKed.
		if dupResp, dupErr := t.deliver(req, body); dupErr == nil {
			io.Copy(io.Discard, dupResp.Body)
			dupResp.Body.Close()
		}
	}
	if err != nil {
		return nil, err
	}
	if p.dropResp {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, errChaosDrop
	}
	return resp, nil
}

// deliver forwards one copy of the request with the given body.
func (t *ChaosTransport) deliver(req *http.Request, body []byte) (*http.Response, error) {
	clone := req.Clone(req.Context())
	clone.Body = io.NopCloser(bytes.NewReader(body))
	clone.ContentLength = int64(len(body))
	return t.next.RoundTrip(clone)
}
