package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// fastPusher returns a config tuned for tests: microsecond backoff,
// few attempts.
func fastPusher(url string, mod func(*PusherConfig)) PusherConfig {
	cfg := PusherConfig{
		URL:         url,
		Timeout:     2 * time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		MaxAttempts: 4,
		QueueLen:    16,
	}
	if mod != nil {
		mod(&cfg)
	}
	return cfg
}

type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestPusherDelivers: the happy path end-to-end into a live merger.
func TestPusherDelivers(t *testing.T) {
	pops, _ := fleetDataset(t)
	m := newTestMerger(t, nil)
	mux := http.NewServeMux()
	for pat, h := range m.Handler() {
		mux.Handle(pat, h)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()

	p, err := NewPusher(fastPusher(srv.URL, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	frames := popFrames(t, "pop00", pops[0])
	for _, f := range frames {
		if err := p.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Delivered != int64(len(frames)) || st.Failed != 0 {
		t.Errorf("pusher stats = %+v", st)
	}
	if st := m.Stats(); st.Accepted != int64(len(frames)) {
		t.Errorf("merger stats = %+v", st)
	}
}

// TestPusherRetriesThenDelivers: transient 503s are retried with
// backoff until the service recovers.
func TestPusherRetriesThenDelivers(t *testing.T) {
	pops, _ := fleetDataset(t)
	m := newTestMerger(t, nil)
	mux := http.NewServeMux()
	for pat, h := range m.Handler() {
		mux.Handle(pat, h)
	}
	fails := 3
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer srv.Close()

	p, err := NewPusher(fastPusher(srv.URL, func(c *PusherConfig) { c.MaxAttempts = 8 }))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	frame := popFrames(t, "pop00", pops[0])[0]
	if err := p.Push(frame); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Delivered != 1 || st.Retries < 3 {
		t.Errorf("pusher stats = %+v, want 1 delivered after >=3 retries", st)
	}
}

// TestPusherSpillAndResume: a dead merger loses nothing — frames
// spill to disk and a later pusher resumes them into a live merger.
func TestPusherSpillAndResume(t *testing.T) {
	pops, _ := fleetDataset(t)
	dir := t.TempDir()

	// Phase 1: merger unreachable; every frame must settle on disk.
	dead := rtFunc(func(*http.Request) (*http.Response, error) {
		return nil, errors.New("merger down")
	})
	p1, err := NewPusher(fastPusher("http://merger.invalid", func(c *PusherConfig) {
		c.SpillDir = dir
		c.MaxAttempts = 2
		c.Client = &http.Client{Transport: dead}
	}))
	if err != nil {
		t.Fatal(err)
	}
	frames := popFrames(t, "pop00", pops[0])
	for _, f := range frames {
		if err := p1.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p1.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	p1.Close()
	if st := p1.Stats(); st.Spilled != int64(len(frames)) || st.Failed != 0 {
		t.Fatalf("phase 1 stats = %+v, want all %d spilled", st, len(frames))
	}

	// Phase 2: merger up; Resume must deliver every spilled frame and
	// clean up the directory.
	m := newTestMerger(t, nil)
	mux := http.NewServeMux()
	for pat, h := range m.Handler() {
		mux.Handle(pat, h)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()
	p2, err := NewPusher(fastPusher(srv.URL, func(c *PusherConfig) { c.SpillDir = dir }))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	n, err := p2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frames) {
		t.Fatalf("Resume = %d, want %d", n, len(frames))
	}
	if err := p2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Accepted != int64(len(frames)) {
		t.Errorf("merger stats after resume = %+v", st)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("%d spill files left after acknowledged resume", len(left))
	}
}

// TestPusherQueueFull: without a spill dir a full queue is an error,
// not a block.
func TestPusherQueueFull(t *testing.T) {
	blocked := make(chan struct{})
	slow := rtFunc(func(*http.Request) (*http.Response, error) {
		<-blocked
		return nil, errors.New("never")
	})
	p, err := NewPusher(fastPusher("http://merger.invalid", func(c *PusherConfig) {
		c.QueueLen = 1
		c.MaxAttempts = 1
		c.Client = &http.Client{Transport: slow}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(blocked); p.Close() }()

	// First frame occupies the worker, second fills the queue; a third
	// must fail fast.
	p.Push([]byte("a"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := p.Push([]byte("b")); err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("err = %v, want ErrQueueFull", err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
}
