package fleet

import (
	"bytes"
	"testing"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/wire"
)

// encodeRawFrame hand-crafts a v1 (uncompressed) frame — the format
// pre-flate binaries emit — so legacy decode stays pinned even after
// the encoder starts preferring v2.
func encodeRawFrame(t testing.TB, pop string, epoch, seq uint64, agg analysis.Aggregator, counts pipeline.Counts) []byte {
	t.Helper()
	payload, err := analysis.AppendSnapshot(nil, agg)
	if err != nil {
		t.Fatal(err)
	}
	b := append([]byte(nil), magic...)
	b = wire.AppendUvarint(b, versionRaw)
	b = wire.AppendString(b, pop)
	b = wire.AppendUvarint(b, epoch)
	b = wire.AppendUvarint(b, seq)
	b = counts.AppendWire(b)
	return wire.AppendBytes(b, payload)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	pops, _ := fleetDataset(t)
	agg := analysis.NewFleetAggs()
	for i := range pops[0] {
		agg.Add(&pops[0][i])
	}
	counts := pipeline.Counts{Decoded: 7, Classified: 7, Tampering: 2, Delivered: 7}
	frame, err := EncodeSnapshot("ams01", 3, 9, agg, counts)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	env, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	if env.PoP != "ams01" || env.Epoch != 3 || env.Seq != 9 || env.Counts != counts {
		t.Errorf("envelope = %+v", env)
	}
	restored := analysis.NewFleetAggs()
	if err := analysis.RestoreSnapshot(env.Payload, restored); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if got := analysis.RenderFleetReport(restored); got != analysis.RenderFleetReport(agg) {
		t.Error("restored payload renders differently")
	}
}

func TestEnvelopeRejectsMalformed(t *testing.T) {
	agg := analysis.NewFleetAggs()
	frame, err := EncodeSnapshot("pop", 0, 0, agg, pipeline.Counts{})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeEnvelope(frame[:cut]); err == nil {
			t.Fatalf("cut=%d: truncated envelope decoded cleanly", cut)
		}
	}
	if _, err := DecodeEnvelope(append(append([]byte(nil), frame...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, err := DecodeEnvelope(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := EncodeSnapshot("", 0, 0, agg, pipeline.Counts{}); err == nil {
		t.Error("empty pop name accepted")
	}
}

// TestEnvelopeCompression pins the v2 flate path: a realistic snapshot
// compresses, so the encoder emits a v2 frame smaller than the v1
// encoding of the same snapshot, and decoding either version yields an
// identical envelope.
func TestEnvelopeCompression(t *testing.T) {
	pops, _ := fleetDataset(t)
	agg := analysis.NewFleetAggs()
	for i := range pops[0] {
		agg.Add(&pops[0][i])
	}
	counts := pipeline.Counts{Decoded: int64(len(pops[0])), Classified: int64(len(pops[0]))}
	frame, err := EncodeSnapshot("ams01", 3, 9, agg, counts)
	if err != nil {
		t.Fatal(err)
	}
	raw := encodeRawFrame(t, "ams01", 3, 9, agg, counts)
	if frame[len(magic)] != versionFlate {
		t.Fatalf("encoder chose version %d for a compressible snapshot", frame[len(magic)])
	}
	if len(frame) >= len(raw) {
		t.Fatalf("v2 frame (%d bytes) is not smaller than v1 (%d bytes)", len(frame), len(raw))
	}
	ev2, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("decode v2: %v", err)
	}
	ev1, err := DecodeEnvelope(raw)
	if err != nil {
		t.Fatalf("decode v1: %v", err)
	}
	if ev1.PoP != ev2.PoP || ev1.Epoch != ev2.Epoch || ev1.Seq != ev2.Seq ||
		ev1.Counts != ev2.Counts || !bytes.Equal(ev1.Payload, ev2.Payload) {
		t.Error("v1 and v2 frames decode to different envelopes")
	}
	restored := analysis.NewFleetAggs()
	if err := analysis.RestoreSnapshot(ev2.Payload, restored); err != nil {
		t.Fatalf("RestoreSnapshot of inflated payload: %v", err)
	}
	if analysis.RenderFleetReport(restored) != analysis.RenderFleetReport(agg) {
		t.Error("inflated payload renders differently")
	}
}

// TestEnvelopeRejectsCompressedDamage: every truncation of a v2 frame
// must fail decode — flate streams cut short, shortened declared
// lengths, and envelope-level cuts all surface as errors, never as a
// silently shorter payload.
func TestEnvelopeRejectsCompressedDamage(t *testing.T) {
	pops, _ := fleetDataset(t)
	agg := analysis.NewFleetAggs()
	for i := range pops[0] {
		agg.Add(&pops[0][i])
	}
	frame, err := EncodeSnapshot("pop", 1, 1, agg, pipeline.Counts{})
	if err != nil {
		t.Fatal(err)
	}
	if frame[len(magic)] != versionFlate {
		t.Skipf("snapshot did not compress; v2 damage sweep needs a v2 frame")
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeEnvelope(frame[:cut]); err == nil {
			t.Fatalf("cut=%d: truncated v2 envelope decoded cleanly", cut)
		}
	}
	// A declared raw length beyond the frame cap must be rejected before
	// any inflation happens.
	huge := append([]byte(nil), magic...)
	huge = wire.AppendUvarint(huge, versionFlate)
	huge = wire.AppendString(huge, "pop")
	huge = wire.AppendUvarint(huge, 1)
	huge = wire.AppendUvarint(huge, 1)
	huge = (pipeline.Counts{}).AppendWire(huge)
	huge = wire.AppendUvarint(huge, MaxFrameBytes+1)
	huge = wire.AppendBytes(huge, []byte{0})
	if _, err := DecodeEnvelope(huge); err == nil {
		t.Error("over-limit declared raw length accepted")
	}
}

// TestEnvelopeTracedRoundTrip pins the v3 frame: the trace context
// survives the wire, the payload still validates, and an explicitly
// zero context is legal.
func TestEnvelopeTracedRoundTrip(t *testing.T) {
	pops, _ := fleetDataset(t)
	agg := analysis.NewFleetAggs()
	for i := range pops[0] {
		agg.Add(&pops[0][i])
	}
	counts := pipeline.Counts{Decoded: 7, Classified: 7, Delivered: 7}
	tc := TraceContext{TraceID: 0xdeadbeef, SpanID: 42}
	frame, err := EncodeSnapshotTraced("ams01", 3, 9, agg, counts, tc)
	if err != nil {
		t.Fatalf("EncodeSnapshotTraced: %v", err)
	}
	if frame[len(magic)] != versionTraced {
		t.Fatalf("traced encoder emitted version %d", frame[len(magic)])
	}
	env, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	if env.PoP != "ams01" || env.Epoch != 3 || env.Seq != 9 || env.Counts != counts {
		t.Errorf("envelope = %+v", env)
	}
	if env.Trace != tc {
		t.Errorf("trace context = %+v, want %+v", env.Trace, tc)
	}
	restored := analysis.NewFleetAggs()
	if err := analysis.RestoreSnapshot(env.Payload, restored); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if analysis.RenderFleetReport(restored) != analysis.RenderFleetReport(agg) {
		t.Error("restored payload renders differently")
	}

	// Zero trace context is a legal v3 frame.
	zf, err := EncodeSnapshotTraced("ams01", 3, 9, agg, counts, TraceContext{})
	if err != nil {
		t.Fatal(err)
	}
	zenv, err := DecodeEnvelope(zf)
	if err != nil {
		t.Fatal(err)
	}
	if !zenv.Trace.Zero() {
		t.Errorf("zero context round-tripped to %+v", zenv.Trace)
	}

	// Every truncation still fails decode, and unknown flag bits are
	// rejected.
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeEnvelope(frame[:cut]); err == nil {
			t.Fatalf("cut=%d: truncated v3 envelope decoded cleanly", cut)
		}
	}
	bad := append([]byte(nil), magic...)
	bad = wire.AppendUvarint(bad, versionTraced)
	bad = wire.AppendString(bad, "pop")
	bad = wire.AppendUvarint(bad, 1)
	bad = wire.AppendUvarint(bad, 1)
	bad = (pipeline.Counts{}).AppendWire(bad)
	bad = wire.AppendUvarint(bad, 0) // trace
	bad = wire.AppendUvarint(bad, 0) // span
	bad = wire.AppendUvarint(bad, 0x80)
	bad = wire.AppendBytes(bad, nil)
	if _, err := DecodeEnvelope(bad); err == nil {
		t.Error("unknown flag bits accepted")
	}
}

// TestEnvelopeMixedFleetParity models a mid-upgrade fleet: the same
// snapshot framed as v1, v2, and v3 must decode to identical
// envelopes, differing only in the trace context the older versions
// cannot carry.
func TestEnvelopeMixedFleetParity(t *testing.T) {
	pops, _ := fleetDataset(t)
	agg := analysis.NewFleetAggs()
	for i := range pops[0] {
		agg.Add(&pops[0][i])
	}
	counts := pipeline.Counts{Decoded: int64(len(pops[0])), Classified: int64(len(pops[0]))}
	v12, err := EncodeSnapshot("ams01", 3, 9, agg, counts)
	if err != nil {
		t.Fatal(err)
	}
	v1 := encodeRawFrame(t, "ams01", 3, 9, agg, counts)
	v3, err := EncodeSnapshotTraced("ams01", 3, 9, agg, counts, TraceContext{TraceID: 7, SpanID: 8})
	if err != nil {
		t.Fatal(err)
	}
	var envs []*Envelope
	for i, frame := range [][]byte{v1, v12, v3} {
		env, err := DecodeEnvelope(frame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		envs = append(envs, env)
	}
	for i, env := range envs[1:] {
		if env.PoP != envs[0].PoP || env.Epoch != envs[0].Epoch ||
			env.Seq != envs[0].Seq || env.Counts != envs[0].Counts ||
			!bytes.Equal(env.Payload, envs[0].Payload) {
			t.Errorf("frame %d decodes differently from v1", i+1)
		}
	}
	if !envs[0].Trace.Zero() || !envs[1].Trace.Zero() {
		t.Error("v1/v2 frames decoded a non-zero trace context")
	}
	if envs[2].Trace.TraceID != 7 || envs[2].Trace.SpanID != 8 {
		t.Errorf("v3 trace context = %+v", envs[2].Trace)
	}
}

func FuzzEnvelope(f *testing.F) {
	agg := analysis.NewFleetAggs()
	if seed, err := EncodeSnapshot("pop", 1, 2, agg, pipeline.Counts{Decoded: 3}); err == nil {
		f.Add(seed)
	}
	f.Add(encodeRawFrame(f, "pop", 1, 2, agg, pipeline.Counts{Decoded: 3}))
	// A v2 frame whose payload actually went through flate.
	if payload, err := analysis.AppendSnapshot(nil, agg); err == nil {
		b := append([]byte(nil), magic...)
		b = wire.AppendUvarint(b, versionFlate)
		b = wire.AppendString(b, "pop")
		b = wire.AppendUvarint(b, 1)
		b = wire.AppendUvarint(b, 2)
		b = (pipeline.Counts{Decoded: 3}).AppendWire(b)
		b = wire.AppendUvarint(b, uint64(len(payload)))
		f.Add(wire.AppendBytes(b, deflateBytes(payload)))
	}
	f.Add([]byte(magic))
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		// A decodable envelope may still carry a corrupt payload; the
		// restore must fail cleanly, never panic.
		analysis.RestoreSnapshot(env.Payload, analysis.NewFleetAggs())
	})
}

// FuzzTraceEnvelope throws mutated v3 frames at the decoder: every
// outcome must be a clean error or a well-formed envelope whose
// payload restore fails cleanly — never a panic, never an unbounded
// allocation.
func FuzzTraceEnvelope(f *testing.F) {
	agg := analysis.NewFleetAggs()
	if seed, err := EncodeSnapshotTraced("pop", 1, 2, agg,
		pipeline.Counts{Decoded: 3}, TraceContext{TraceID: 0xabc, SpanID: 7}); err == nil {
		f.Add(seed)
	}
	// A v3 frame whose payload actually went through flate.
	if payload, err := analysis.AppendSnapshot(nil, agg); err == nil {
		b := append([]byte(nil), magic...)
		b = wire.AppendUvarint(b, versionTraced)
		b = wire.AppendString(b, "pop")
		b = wire.AppendUvarint(b, 1)
		b = wire.AppendUvarint(b, 2)
		b = (pipeline.Counts{Decoded: 3}).AppendWire(b)
		b = wire.AppendUvarint(b, 0xabc)
		b = wire.AppendUvarint(b, 7)
		b = wire.AppendUvarint(b, flagFlate)
		b = wire.AppendUvarint(b, uint64(len(payload)))
		f.Add(wire.AppendBytes(b, deflateBytes(payload)))
	}
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		if env.PoP == "" || len(env.PoP) > maxPoPName {
			t.Fatalf("decoded envelope with invalid pop %q", env.PoP)
		}
		analysis.RestoreSnapshot(env.Payload, analysis.NewFleetAggs())
	})
}
