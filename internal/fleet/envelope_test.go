package fleet

import (
	"bytes"
	"testing"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/pipeline"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	pops, _ := fleetDataset(t)
	agg := analysis.NewFleetAggs()
	for i := range pops[0] {
		agg.Add(&pops[0][i])
	}
	counts := pipeline.Counts{Decoded: 7, Classified: 7, Tampering: 2, Delivered: 7}
	frame, err := EncodeSnapshot("ams01", 3, 9, agg, counts)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	env, err := DecodeEnvelope(frame)
	if err != nil {
		t.Fatalf("DecodeEnvelope: %v", err)
	}
	if env.PoP != "ams01" || env.Epoch != 3 || env.Seq != 9 || env.Counts != counts {
		t.Errorf("envelope = %+v", env)
	}
	restored := analysis.NewFleetAggs()
	if err := analysis.RestoreSnapshot(env.Payload, restored); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if got := analysis.RenderFleetReport(restored); got != analysis.RenderFleetReport(agg) {
		t.Error("restored payload renders differently")
	}
}

func TestEnvelopeRejectsMalformed(t *testing.T) {
	agg := analysis.NewFleetAggs()
	frame, err := EncodeSnapshot("pop", 0, 0, agg, pipeline.Counts{})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeEnvelope(frame[:cut]); err == nil {
			t.Fatalf("cut=%d: truncated envelope decoded cleanly", cut)
		}
	}
	if _, err := DecodeEnvelope(append(append([]byte(nil), frame...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, err := DecodeEnvelope(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := EncodeSnapshot("", 0, 0, agg, pipeline.Counts{}); err == nil {
		t.Error("empty pop name accepted")
	}
}

func FuzzEnvelope(f *testing.F) {
	agg := analysis.NewFleetAggs()
	if seed, err := EncodeSnapshot("pop", 1, 2, agg, pipeline.Counts{Decoded: 3}); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(magic))
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return
		}
		// A decodable envelope may still carry a corrupt payload; the
		// restore must fail cleanly, never panic.
		analysis.RestoreSnapshot(env.Payload, analysis.NewFleetAggs())
	})
}
