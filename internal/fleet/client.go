package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Push when the bounded retry queue is
// full and no spill directory is configured.
var ErrQueueFull = errors.New("fleet: push queue full")

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("fleet: pusher closed")

// PusherConfig configures a Pusher.
type PusherConfig struct {
	// URL is the merge service base URL (the client posts to
	// URL + "/v1/push").
	URL string
	// Client is the HTTP client; the chaos tests inject a faulty
	// transport here. Default: a dedicated http.Client.
	Client *http.Client
	// Timeout bounds each individual attempt via a context deadline
	// (default 10s).
	Timeout time.Duration
	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// between attempts (defaults 250ms and 30s). Each sleep gets up to
	// 50% seeded jitter so a fleet of PoPs never retries in lockstep.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts bounds attempts per frame before it spills (or is
	// counted failed); default 8.
	MaxAttempts int
	// QueueLen bounds the in-memory retry queue (default 64).
	QueueLen int
	// SpillDir, when set, receives frames the queue cannot hold or
	// that exhausted their attempts; Resume re-enqueues them.
	SpillDir string
	// Seed seeds the jitter RNG (0 means unjittered determinism is
	// fine — tests).
	Seed int64
}

// PusherStats counts the client's delivery outcomes.
type PusherStats struct {
	// Delivered frames acknowledged by the merger (any verdict).
	Delivered int64
	// Retries counts failed attempts that were retried.
	Retries int64
	// Spilled frames written to the spill directory.
	Spilled int64
	// Resumed frames re-enqueued from the spill directory.
	Resumed int64
	// Failed frames lost: attempts exhausted and no spill directory.
	Failed int64
}

type queued struct {
	frame []byte
	// spillPath is the on-disk source of a resumed frame; deleted
	// only after the merger acknowledges it.
	spillPath string
}

// Pusher delivers snapshot frames to a merge service with bounded
// retries, capped jittered backoff, and spill-to-disk, so a merger
// outage never loses a frame (and never blocks the pipeline feeding
// Push). One background goroutine drains the queue in order.
type Pusher struct {
	cfg PusherConfig

	ch chan queued
	// pending counts enqueued frames not yet settled (delivered,
	// spilled, or failed); Flush waits for it to hit zero.
	pending atomic.Int64
	closed  atomic.Bool
	wg      sync.WaitGroup

	mu  sync.Mutex // rng + spill file naming
	rng *rand.Rand
	seq int64

	delivered atomic.Int64
	retries   atomic.Int64
	spilled   atomic.Int64
	resumed   atomic.Int64
	failed    atomic.Int64
}

// NewPusher starts a pusher; callers own Close.
func NewPusher(cfg PusherConfig) (*Pusher, error) {
	if cfg.URL == "" {
		return nil, errors.New("fleet: PusherConfig.URL is required")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 250 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	p := &Pusher{
		cfg: cfg,
		ch:  make(chan queued, cfg.QueueLen),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	p.wg.Add(1)
	go p.loop()
	return p, nil
}

// Push enqueues one frame for delivery. It never blocks: a full queue
// spills to disk when SpillDir is set and returns ErrQueueFull
// otherwise.
func (p *Pusher) Push(frame []byte) error {
	if p.closed.Load() {
		return ErrClosed
	}
	p.pending.Add(1)
	select {
	case p.ch <- queued{frame: frame}:
		return nil
	default:
		p.pending.Add(-1)
	}
	if p.cfg.SpillDir != "" {
		return p.spill(queued{frame: frame})
	}
	return ErrQueueFull
}

// Resume re-enqueues every frame a previous run spilled to SpillDir,
// oldest first. Spill files are deleted only after the merger
// acknowledges them, so crashing mid-resume loses nothing — the dedup
// on the merge side makes re-resuming the same files harmless.
func (p *Pusher) Resume() (int, error) {
	if p.cfg.SpillDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(p.cfg.SpillDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("fleet: resume: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".snap" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	n := 0
	for _, name := range names {
		path := filepath.Join(p.cfg.SpillDir, name)
		frame, err := os.ReadFile(path)
		if err != nil {
			return n, fmt.Errorf("fleet: resume %s: %w", name, err)
		}
		p.pending.Add(1)
		select {
		case p.ch <- queued{frame: frame, spillPath: path}:
			p.resumed.Add(1)
			n++
		default:
			// Queue full: the remaining files simply stay spilled for
			// the next Resume.
			p.pending.Add(-1)
			return n, nil
		}
	}
	return n, nil
}

// Flush blocks until the queue is empty and no delivery is in flight,
// or ctx ends. Frames that spilled or failed count as settled.
func (p *Pusher) Flush(ctx context.Context) error {
	for {
		if p.pending.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// Close stops accepting frames, drains the queue, and waits for the
// worker to exit.
func (p *Pusher) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	close(p.ch)
	p.wg.Wait()
	return nil
}

// Stats returns the delivery counters.
func (p *Pusher) Stats() PusherStats {
	return PusherStats{
		Delivered: p.delivered.Load(),
		Retries:   p.retries.Load(),
		Spilled:   p.spilled.Load(),
		Resumed:   p.resumed.Load(),
		Failed:    p.failed.Load(),
	}
}

func (p *Pusher) loop() {
	defer p.wg.Done()
	for q := range p.ch {
		p.deliver(q)
		p.pending.Add(-1)
	}
}

// deliver attempts one frame to exhaustion, then spills or fails it.
func (p *Pusher) deliver(q queued) {
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
			time.Sleep(p.backoff(attempt))
		}
		if p.attempt(q.frame) == nil {
			p.delivered.Add(1)
			if q.spillPath != "" {
				os.Remove(q.spillPath)
			}
			return
		}
	}
	if q.spillPath != "" {
		// Already on disk; leave it for the next Resume.
		p.spilled.Add(1)
		return
	}
	if p.cfg.SpillDir != "" {
		if p.spill(q) == nil {
			return
		}
	}
	p.failed.Add(1)
}

// attempt posts the frame once under the per-attempt deadline. Any
// 2xx is success — the merger acknowledges duplicates and late frames
// with 200 precisely so the client stops retrying them.
func (p *Pusher) attempt(frame []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		p.cfg.URL+"/v1/push", bytes.NewReader(frame))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("fleet: push status %d", resp.StatusCode)
	}
	return nil
}

// backoff returns the capped exponential delay for the given attempt
// number (1-based for the first retry), plus up to 50% seeded jitter.
func (p *Pusher) backoff(attempt int) time.Duration {
	d := p.cfg.BaseBackoff << (attempt - 1)
	if d > p.cfg.MaxBackoff || d <= 0 {
		d = p.cfg.MaxBackoff
	}
	p.mu.Lock()
	jitter := time.Duration(p.rng.Int63n(int64(d)/2 + 1))
	p.mu.Unlock()
	return d + jitter
}

// spill writes one frame to the spill directory with a
// lexically-ordered unique name.
func (p *Pusher) spill(q queued) error {
	if err := os.MkdirAll(p.cfg.SpillDir, 0o755); err != nil {
		p.failed.Add(1)
		return fmt.Errorf("fleet: spill: %w", err)
	}
	p.mu.Lock()
	p.seq++
	name := fmt.Sprintf("%020d-%06d.snap", time.Now().UnixNano(), p.seq)
	p.mu.Unlock()
	path := filepath.Join(p.cfg.SpillDir, name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, q.frame, 0o644); err != nil {
		p.failed.Add(1)
		return fmt.Errorf("fleet: spill: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		p.failed.Add(1)
		return fmt.Errorf("fleet: spill: %w", err)
	}
	p.spilled.Add(1)
	return nil
}
