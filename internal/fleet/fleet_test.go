package fleet

// Shared fixtures: a deterministic scenario partitioned client-affine
// across simulated PoPs (distinct country mixes fall out of the
// partition), per-(pop, epoch) delta frames, and the single-process
// reference report every distributed test must reproduce exactly.

import (
	"strings"
	"sync"
	"testing"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/core"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/workload"
)

// epochHours splits the 48-hour scenario into 4 collection epochs.
const epochHours = 12

var (
	fxOnce sync.Once
	fxErr  string
	fxPops [][]analysis.Record // per-PoP record sets, 20 PoPs
	fxWant string              // single-process RenderFleetReport
)

// fleetDataset builds (once) 20 PoPs' record sets and the reference
// report over their union.
func fleetDataset(t testing.TB) ([][]analysis.Record, string) {
	t.Helper()
	fxOnce.Do(func() {
		scen, err := workload.BuildScenario("fleet-test", 8000, 48, 41)
		if err != nil {
			fxErr = err.Error()
			return
		}
		const pops = 20
		shards := workload.PoPPartition(scen.Specs(), pops)
		cl := core.NewClassifier(core.DefaultConfig())
		global := analysis.NewFleetAggs()
		fxPops = make([][]analysis.Record, pops)
		for pop, specs := range shards {
			for _, c := range scen.RunSpecs(specs, 0) {
				if c == nil {
					continue // unsampled
				}
				rec := analysis.NewRecord(c, scen.Geo, cl.Classify(c))
				fxPops[pop] = append(fxPops[pop], rec)
				global.Add(&rec)
			}
		}
		fxWant = analysis.RenderFleetReport(global)
	})
	if fxErr != "" {
		t.Fatalf("fleet dataset: %s", fxErr)
	}
	return fxPops, fxWant
}

// popFrames encodes one PoP's records as per-epoch delta frames in
// epoch order, with synthetic pipeline counts (one classified per
// record).
func popFrames(t testing.TB, pop string, recs []analysis.Record) [][]byte {
	t.Helper()
	byEpoch := map[uint64][]int{}
	maxEpoch := uint64(0)
	for i := range recs {
		e := uint64(recs[i].Hour / epochHours)
		byEpoch[e] = append(byEpoch[e], i)
		if e > maxEpoch {
			maxEpoch = e
		}
	}
	var frames [][]byte
	seq := uint64(0)
	for e := uint64(0); e <= maxEpoch; e++ {
		idx := byEpoch[e]
		if len(idx) == 0 {
			continue
		}
		agg := analysis.NewFleetAggs()
		for _, i := range idx {
			agg.Add(&recs[i])
		}
		n := int64(len(idx))
		counts := pipeline.Counts{Decoded: n, Classified: n, Delivered: n}
		frame, err := EncodeSnapshot(pop, e, seq, agg, counts)
		if err != nil {
			t.Fatalf("encode %s epoch %d: %v", pop, e, err)
		}
		frames = append(frames, frame)
		seq++
	}
	return frames
}

// newTestMerger builds a merger over NewFleetAggs with the given
// tweaks applied.
func newTestMerger(t testing.TB, mod func(*MergerConfig)) *Merger {
	t.Helper()
	cfg := MergerConfig{Fresh: analysis.NewFleetAggs}
	if mod != nil {
		mod(&cfg)
	}
	m, err := NewMerger(cfg)
	if err != nil {
		t.Fatalf("NewMerger: %v", err)
	}
	return m
}

// firstDiff locates the first differing line of two renders.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + itoa(i+1) + ":\n  a: " + al[i] + "\n  b: " + bl[i]
		}
	}
	return "lengths differ: " + itoa(len(al)) + " vs " + itoa(len(bl)) + " lines"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
