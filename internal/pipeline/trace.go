package pipeline

import (
	"strconv"
	"time"

	"tamperdetect/internal/trace"
)

// Span instrumentation for the streaming paths. A runTrace holds the
// per-run interned span names and emit helpers so the hot path never
// touches strings or locks: emitting a span is a time.Now pair plus a
// handful of atomic stores into a preallocated ring slot.
//
// Span taxonomy (all spans share the tracer's trace ID):
//
//	scan            one per raw batch, on the scanner's ring
//	queue-wait      enqueue → worker pickup, per batch (async in the
//	                Chrome export: its interval overlaps whatever the
//	                picking worker was doing before)
//	decode          one per batch, on the worker's ring
//	decode.record   per head-sampled record, nested in decode
//	classify        one per batch (+ classify.record)
//	observe         one per batch (+ observe.record)
//	sink            one per delivered batch (+ sink.record), on the
//	                deliver ring
//
// Lineage: scan is the parent of the batch's queue-wait, decode,
// classify, observe, and sink spans; record spans parent to their
// batch span. Shard attribution rides every span (-1 on the
// unsharded paths), so a sharded run's spans separate cleanly per
// segment.
type runTrace struct {
	t *trace.Tracer

	scan, queueWait, decode, classify, observe, sink int32
	decodeRec, classifyRec, observeRec, sinkRec      int32
}

// Stable span names, shared with the exporters and tests.
const (
	SpanScan     = "scan"
	SpanDecode   = "decode"
	SpanClassify = "classify"
	SpanObserve  = "observe"
	SpanSink     = "sink"
)

func newRunTrace(t *trace.Tracer) *runTrace {
	if t == nil {
		return nil
	}
	return &runTrace{
		t:           t,
		scan:        t.NameID(SpanScan),
		queueWait:   t.NameID(trace.QueueWaitName),
		decode:      t.NameID(SpanDecode),
		classify:    t.NameID(SpanClassify),
		observe:     t.NameID(SpanObserve),
		sink:        t.NameID(SpanSink),
		decodeRec:   t.NameID(SpanDecode + ".record"),
		classifyRec: t.NameID(SpanClassify + ".record"),
		observeRec:  t.NameID(SpanObserve + ".record"),
		sinkRec:     t.NameID(SpanSink + ".record"),
	}
}

// nowNS is the span clock.
func nowNS() int64 { return time.Now().UnixNano() }

// itoa keeps the goroutine-setup call sites short.
func itoa(i int) string { return strconv.Itoa(i) }

// emit writes one finished span to ring.
func (rt *runTrace) emit(ring *trace.Ring, name int32, spanID, parent uint64,
	start, end int64, worker, shard int32, record int64, count int32) {
	ring.Emit(trace.SpanRec{
		TraceID: rt.t.TraceID(), SpanID: spanID, Parent: parent, NameID: name,
		Start: start, Dur: end - start, Worker: worker, Shard: shard,
		Record: record, Count: count,
	})
}

// sampled reports whether record index i gets per-record spans.
func (rt *runTrace) sampled(i int) bool { return rt.t.Sampled(int64(i)) }
