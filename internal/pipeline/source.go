package pipeline

import (
	"io"

	"tamperdetect/internal/capture"
)

// Source yields connection records one at a time. Next returns io.EOF
// at a clean end of stream; any other error aborts the pipeline. Next
// is called from a single goroutine, so implementations need not
// support concurrent Next calls. One overlap is part of the contract,
// though: when the run's context is cancelled, Run/ScanTDCAP return
// without waiting for a source goroutine that may be blocked inside
// Next (an uninterruptible read), and the caller will typically tear
// the source down right away — so whatever teardown unblocks Next
// (os.File.Close, workload.StreamRun.Close) must be safe to call
// concurrently with an in-flight Next.
type Source interface {
	Next() (*capture.Connection, error)
}

// ReaderSource decodes TDCAP records incrementally from an io.Reader,
// one record per Next call, never materialising the whole capture.
type ReaderSource struct {
	r *capture.Reader
}

// NewReaderSource wraps r (typically a file or network stream).
func NewReaderSource(r io.Reader) *ReaderSource {
	return &ReaderSource{r: capture.NewReader(r)}
}

// Next returns the next decoded record.
func (s *ReaderSource) Next() (*capture.Connection, error) { return s.r.Next() }

// Decoded reports how many records have been decoded so far.
func (s *ReaderSource) Decoded() int { return s.r.Count() }

// BytesRead reports the raw bytes consumed from the underlying
// stream, feeding the capture throughput counter when the pipeline
// runs with Telemetry.
func (s *ReaderSource) BytesRead() int64 { return s.r.BytesRead() }

// SliceSource yields records from an in-memory slice, skipping nil
// entries (positional simulation output uses nil for unsampled specs).
type SliceSource struct {
	conns []*capture.Connection
	i     int
}

// NewSliceSource wraps conns without copying.
func NewSliceSource(conns []*capture.Connection) *SliceSource {
	return &SliceSource{conns: conns}
}

// Next returns the next non-nil record, or io.EOF past the end.
func (s *SliceSource) Next() (*capture.Connection, error) {
	for s.i < len(s.conns) {
		c := s.conns[s.i]
		s.i++
		if c != nil {
			return c, nil
		}
	}
	return nil, io.EOF
}

// ChanSource yields records from a channel; a closed channel is EOF.
// It adapts live producers (a sampler drain loop, a pcap ingester)
// to the pipeline.
type ChanSource <-chan *capture.Connection

// Next receives the next record, skipping nils.
func (s ChanSource) Next() (*capture.Connection, error) {
	for {
		c, ok := <-s
		if !ok {
			return nil, io.EOF
		}
		if c != nil {
			return c, nil
		}
	}
}
