package pipeline

// Contract tests for Config.Observe, the per-worker aggregation hook:
// every classified record is observed exactly once, the worker index
// is in range, per-worker calls are sequential (the shards below are
// updated without locks, so -race proves it), and per-worker shards
// merged together equal the batch histogram.

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"tamperdetect/internal/core"
	"tamperdetect/internal/workload"
)

func observeCapture(t *testing.T, total int, seed uint64) ([]byte, [core.NumSignatures]int64) {
	t.Helper()
	s, err := workload.BuildScenario("observe-e2e", total, 48, seed)
	if err != nil {
		t.Fatal(err)
	}
	conns := s.Run(0)
	return encode(t, conns), batchHistogram(conns)
}

func TestObserveExactlyOncePerWorkerShards(t *testing.T) {
	data, want := observeCapture(t, e2eTotal(t)/4, 11)

	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 64} {
			// One shard per worker, mutated without synchronisation:
			// correctness here depends on Observe being sequential per
			// worker index, which is exactly the documented contract.
			shards := make([][core.NumSignatures]int64, workers)
			observed := int64(0)
			counts, err := Stream(context.Background(), bytes.NewReader(data),
				Config{Workers: workers, BatchSize: batch,
					Observe: func(worker int, it Item) {
						if worker < 0 || worker >= workers {
							panic("worker index out of range")
						}
						if it.Err == nil {
							shards[worker][it.Res.Signature]++
						}
						atomic.AddInt64(&observed, 1)
					}},
				nil)
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			if observed != counts.Decoded {
				t.Errorf("workers=%d batch=%d: observed %d of %d decoded",
					workers, batch, observed, counts.Decoded)
			}
			var merged [core.NumSignatures]int64
			for _, sh := range shards {
				for sig, n := range sh {
					merged[sig] += n
				}
			}
			if merged != want {
				t.Errorf("workers=%d batch=%d: merged shard histogram diverges from batch path",
					workers, batch)
			}
		}
	}
}

// TestObserveSeesEarlyStoppedRecords: Observe fires from the classify
// stage, so a sink that stops early must not lose observations for
// records the workers already classified — observed ≥ delivered.
func TestObserveSeesEarlyStoppedRecords(t *testing.T) {
	data, _ := observeCapture(t, 2000, 12)
	observed := int64(0)
	delivered := 0
	counts, err := Stream(context.Background(), bytes.NewReader(data),
		Config{Workers: 4, BatchSize: 16,
			Observe: func(worker int, it Item) { atomic.AddInt64(&observed, 1) }},
		func(it Item) error {
			delivered++
			if delivered >= 100 {
				return ErrStop
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// The 100th record's sink call returned ErrStop, which does not
	// count as a delivery.
	if counts.Delivered != 99 {
		t.Fatalf("delivered %d, want 99", counts.Delivered)
	}
	if observed < counts.Delivered {
		t.Errorf("observed %d < delivered %d", observed, counts.Delivered)
	}
	if observed > counts.Decoded {
		t.Errorf("observed %d > decoded %d", observed, counts.Decoded)
	}
}

// TestMetricsMonotonicity: after Run returns, the stage counters obey
// delivered ≤ classified+errors ≤ decoded — the pipeline never invents
// records downstream of a stage. Checked on clean runs at several
// worker counts and on an early-stopped run, where the inequalities
// are strict candidates (records in flight at cancellation are
// dropped, never delivered).
func TestMetricsMonotonicity(t *testing.T) {
	data, _ := observeCapture(t, 3000, 13)
	check := func(name string, c Counts) {
		t.Helper()
		if c.Delivered > c.Classified+c.Errors {
			t.Errorf("%s: delivered %d > classified %d + errors %d",
				name, c.Delivered, c.Classified, c.Errors)
		}
		if c.Classified+c.Errors > c.Decoded {
			t.Errorf("%s: classified %d + errors %d > decoded %d",
				name, c.Classified, c.Errors, c.Decoded)
		}
		if c.Dropped != c.Decoded-c.Delivered {
			t.Errorf("%s: dropped %d != decoded %d - delivered %d",
				name, c.Dropped, c.Decoded, c.Delivered)
		}
	}
	for _, workers := range []int{1, 4, 16} {
		counts, err := Stream(context.Background(), bytes.NewReader(data),
			Config{Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		check("clean", counts)
		if counts.Delivered != counts.Decoded {
			t.Errorf("clean run workers=%d: delivered %d != decoded %d",
				workers, counts.Delivered, counts.Decoded)
		}
	}
	n := 0
	counts, err := Stream(context.Background(), bytes.NewReader(data),
		Config{Workers: 8, BatchSize: 8},
		func(Item) error {
			if n++; n >= 50 {
				return ErrStop
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	check("early-stop", counts)
}
