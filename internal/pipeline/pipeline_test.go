package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/netip"
	"testing"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/packet"
)

// testConns builds n deterministic connection records: every third one
// carries an injected RST+ACK after the handshake (a tampering
// signature), the rest complete cleanly with a FIN.
func testConns(n int) []*capture.Connection {
	out := make([]*capture.Connection, n)
	for i := range out {
		src := netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
		c := &capture.Connection{
			SrcIP: src, DstIP: netip.MustParseAddr("192.0.2.80"),
			SrcPort: uint16(30000 + i%20000), DstPort: 443, IPVersion: 4,
		}
		if i%3 == 0 {
			c.Packets = []capture.PacketRecord{
				{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100, TTL: 54, IPID: 1, HasOptions: true},
				{Timestamp: 0, Flags: packet.FlagsACK, Seq: 101, TTL: 54, IPID: 2},
				{Timestamp: 1, Flags: packet.FlagsRSTACK, Seq: 101, Ack: 7, TTL: 200, IPID: 50000},
			}
			c.TotalPackets = 3
			c.LastActivity = 1
			c.CloseTime = 30
		} else {
			c.Packets = []capture.PacketRecord{
				{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100, TTL: 54, IPID: 1, HasOptions: true},
				{Timestamp: 0, Flags: packet.FlagsACK, Seq: 101, TTL: 54, IPID: 2},
				{Timestamp: 1, Flags: packet.FlagsPSHACK, Seq: 101, TTL: 54, IPID: 3,
					PayloadLen: 5, Payload: []byte("GET /")},
				{Timestamp: 1, Flags: packet.FlagsFINACK, Seq: 106, TTL: 54, IPID: 4},
			}
			c.TotalPackets = 4
			c.LastActivity = 1
			c.CloseTime = 2
		}
		out[i] = c
	}
	return out
}

// encode serialises conns to an in-memory TDCAP capture.
func encode(t testing.TB, conns []*capture.Connection) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// batchHistogram is the reference single-threaded classification.
func batchHistogram(conns []*capture.Connection) [core.NumSignatures]int64 {
	cl := core.NewClassifier(core.DefaultConfig())
	var h [core.NumSignatures]int64
	for _, c := range conns {
		h[cl.Classify(c).Signature]++
	}
	return h
}

func TestStreamMatchesBatch(t *testing.T) {
	conns := testConns(500)
	data := encode(t, conns)
	want := batchHistogram(conns)
	for _, workers := range []int{1, 4, 16} {
		for _, ordered := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/ordered=%v", workers, ordered)
			var got [core.NumSignatures]int64
			counts, err := Stream(context.Background(), bytes.NewReader(data),
				Config{Workers: workers, Ordered: ordered, Depth: 8},
				func(it Item) error {
					got[it.Res.Signature]++
					return nil
				})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got != want {
				t.Errorf("%s: histogram mismatch:\n got %v\nwant %v", name, got, want)
			}
			if counts.Decoded != int64(len(conns)) || counts.Classified != int64(len(conns)) ||
				counts.Delivered != int64(len(conns)) || counts.Dropped != 0 || counts.Errors != 0 {
				t.Errorf("%s: counts = %+v", name, counts)
			}
			if counts.Tampering != want[core.SigACKRSTACK] {
				t.Errorf("%s: tampering = %d, want %d", name, counts.Tampering, want[core.SigACKRSTACK])
			}
		}
	}
}

func TestOrderedDelivery(t *testing.T) {
	conns := testConns(300)
	next := 0
	_, err := Run(context.Background(), NewSliceSource(conns),
		Config{Workers: 8, Depth: 4, Ordered: true},
		func(it Item) error {
			if it.Index != next {
				return fmt.Errorf("index %d out of order, want %d", it.Index, next)
			}
			if it.Conn != conns[next] {
				return fmt.Errorf("index %d delivered wrong connection", it.Index)
			}
			next++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if next != len(conns) {
		t.Errorf("delivered %d items, want %d", next, len(conns))
	}
}

func TestSliceSourceSkipsNil(t *testing.T) {
	conns := testConns(10)
	withNils := make([]*capture.Connection, 0, 15)
	for i, c := range conns {
		withNils = append(withNils, c)
		if i%2 == 0 {
			withNils = append(withNils, nil)
		}
	}
	delivered := 0
	counts, err := Run(context.Background(), NewSliceSource(withNils), Config{Workers: 2},
		func(it Item) error { delivered++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if delivered != len(conns) || counts.Decoded != int64(len(conns)) {
		t.Errorf("delivered %d decoded %d, want %d", delivered, counts.Decoded, len(conns))
	}
}

func TestDecodeError(t *testing.T) {
	conns := testConns(50)
	data := encode(t, conns)
	// Truncate mid-record: the good prefix classifies, then the decode
	// error surfaces.
	truncated := data[:len(data)-10]
	delivered := 0
	counts, err := Stream(context.Background(), bytes.NewReader(truncated),
		Config{Workers: 4, Ordered: true},
		func(it Item) error { delivered++; return nil })
	if err == nil {
		t.Fatal("truncated capture streamed without error")
	}
	if !errors.Is(err, capture.ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
	if counts.Errors != 1 {
		t.Errorf("Errors = %d, want 1", counts.Errors)
	}
	// The good prefix — every record before the corrupt tail — still
	// drains through and is delivered.
	if delivered != len(conns)-1 {
		t.Errorf("delivered = %d, want %d (good prefix)", delivered, len(conns)-1)
	}
}

func TestSinkError(t *testing.T) {
	conns := testConns(200)
	sentinel := errors.New("disk full")
	delivered := 0
	counts, err := Run(context.Background(), NewSliceSource(conns),
		Config{Workers: 4, Depth: 4},
		func(it Item) error {
			if delivered == 25 {
				return sentinel
			}
			delivered++
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if counts.Delivered != 25 {
		t.Errorf("Delivered = %d, want 25", counts.Delivered)
	}
	if counts.Dropped != counts.Decoded-counts.Delivered {
		t.Errorf("Dropped = %d, want Decoded-Delivered = %d",
			counts.Dropped, counts.Decoded-counts.Delivered)
	}
	if counts.Errors != 1 {
		t.Errorf("Errors = %d, want 1", counts.Errors)
	}
}

func TestErrStop(t *testing.T) {
	conns := testConns(200)
	delivered := 0
	counts, err := Run(context.Background(), NewSliceSource(conns),
		Config{Workers: 4, Depth: 4},
		func(it Item) error {
			delivered++
			if delivered == 10 {
				return ErrStop
			}
			return nil
		})
	if err != nil {
		t.Fatalf("ErrStop surfaced as error: %v", err)
	}
	if counts.Delivered != 9 {
		t.Errorf("Delivered = %d, want 9", counts.Delivered)
	}
	if counts.Errors != 0 {
		t.Errorf("Errors = %d, want 0", counts.Errors)
	}
}

func TestNilSinkCountsOnly(t *testing.T) {
	conns := testConns(120)
	counts, err := Run(context.Background(), NewSliceSource(conns), Config{Workers: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Delivered != int64(len(conns)) || counts.Classified != int64(len(conns)) {
		t.Errorf("counts = %+v", counts)
	}
}

func TestLiveMetrics(t *testing.T) {
	conns := testConns(80)
	var m Metrics
	counts, err := Run(context.Background(), NewSliceSource(conns),
		Config{Workers: 2, Metrics: &m}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Snapshot() != counts {
		t.Errorf("Metrics snapshot %+v != returned counts %+v", m.Snapshot(), counts)
	}
	m.Reset()
	if m.Snapshot() != (Counts{}) {
		t.Errorf("Reset left %+v", m.Snapshot())
	}
}

func TestChanSource(t *testing.T) {
	conns := testConns(40)
	ch := make(chan *capture.Connection)
	go func() {
		defer close(ch)
		for i, c := range conns {
			ch <- c
			if i%5 == 0 {
				ch <- nil // sources may emit nil gaps; they are skipped
			}
		}
	}()
	counts, err := Run(context.Background(), ChanSource(ch), Config{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Classified != int64(len(conns)) {
		t.Errorf("classified %d, want %d", counts.Classified, len(conns))
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	if err := w.Flush(); err != nil { // header-only capture
		t.Fatal(err)
	}
	counts, err := Stream(context.Background(), &buf, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts != (Counts{}) {
		t.Errorf("counts = %+v, want zero", counts)
	}
}

func TestStreamPreservesReaderSemantics(t *testing.T) {
	// A zero-byte reader is a clean EOF (as in the batch path); junk
	// bytes are a bad-magic error.
	if counts, err := Stream(context.Background(), bytes.NewReader(nil), Config{}, nil); err != nil || counts != (Counts{}) {
		t.Fatalf("empty reader: counts=%+v err=%v", counts, err)
	}
	if _, err := Stream(context.Background(), bytes.NewReader([]byte("not a capture")), Config{}, nil); !errors.Is(err, capture.ErrBadMagic) {
		t.Fatalf("junk reader: err = %v, want ErrBadMagic", err)
	}
}
