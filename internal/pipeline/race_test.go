package pipeline

// Concurrency tests, written to be meaningful under `go test -race`:
// cancellation mid-stream, sink backpressure against a slow consumer,
// and early close of the underlying reader must all drain cleanly
// without leaking goroutines. Every test wraps itself in a
// goroutine-leak check (a goleak-style runtime.NumGoroutine settle).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/telemetry"
	"tamperdetect/internal/wire"
)

// checkGoroutines snapshots the goroutine count and returns a verifier
// that fails the test if the count has not settled back by the
// deadline (background goroutines need a moment to observe
// cancellation).
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for time.Now().Before(deadline) {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
	}
}

// endlessSource yields synthetic connections forever (until the
// pipeline stops pulling); decoded counts the records handed out.
type endlessSource struct {
	conns   []*capture.Connection
	decoded atomic.Int64
}

func newEndlessSource() *endlessSource { return &endlessSource{conns: testConns(16)} }

func (s *endlessSource) Next() (*capture.Connection, error) {
	n := s.decoded.Add(1)
	return s.conns[int(n)%len(s.conns)], nil
}

func TestCancelMidStream(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 3, 64} {
			t.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(t *testing.T) {
				verify := checkGoroutines(t)
				defer verify()

				ctx, cancel := context.WithCancel(context.Background())
				src := newEndlessSource()
				delivered := 0
				counts, err := Run(ctx, src, Config{Workers: workers, Depth: 8, BatchSize: batch},
					func(it Item) error {
						delivered++
						if delivered == 50 {
							cancel() // cancel from inside the stream
						}
						return nil
					})
				if !errors.Is(err, context.Canceled) {
					t.Errorf("err = %v, want context.Canceled", err)
				}
				if counts.Delivered == 0 {
					t.Error("nothing delivered before cancellation")
				}
				if counts.Dropped != counts.Decoded-counts.Delivered {
					t.Errorf("dropped %d, want %d", counts.Dropped, counts.Decoded-counts.Delivered)
				}
			})
		}
	}
}

func TestCancelBeforeStart(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	counts, err := Run(ctx, newEndlessSource(), Config{Workers: 4}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if counts.Delivered != 0 {
		t.Errorf("Delivered = %d, want 0", counts.Delivered)
	}
}

// TestSlowConsumerBackpressure verifies the bound the package
// documents: a sink that never drains lets the pipeline read at most
// 2*Depth + (Workers+2)*BatchSize + a small constant records ahead.
func TestSlowConsumerBackpressure(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 3, 64} {
			t.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(t *testing.T) {
				verify := checkGoroutines(t)
				defer verify()

				const depth = 8
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				src := newEndlessSource()
				delivered := 0
				blocked := make(chan struct{})
				go func() {
					// Give the pipeline time to read as far ahead as it ever
					// will against a stalled sink, then release it.
					<-blocked
					time.Sleep(200 * time.Millisecond)
					cancel()
				}()
				_, err := Run(ctx, src, Config{Workers: workers, Depth: depth, BatchSize: batch},
					func(it Item) error {
						delivered++
						if delivered == 1 {
							close(blocked)
							<-ctx.Done() // stall: simulate a wedged consumer
						}
						return nil
					})
				if !errors.Is(err, context.Canceled) {
					t.Errorf("err = %v, want context.Canceled", err)
				}
				// Read-ahead bound: both channels hold Depth records in
				// batches, one batch in each worker's hands, one partial
				// batch at the decoder, one draining at the stalled sink.
				eff := batch
				if eff > depth {
					eff = depth
				}
				limit := int64(2*depth + (workers+2)*eff + 2)
				if got := src.decoded.Load(); got > limit {
					t.Errorf("decoded %d records against a stalled sink, bound is %d", got, limit)
				}
			})
		}
	}
}

// readCloser simulates a capture file closed mid-scan: after the
// first n bytes every read fails with os.ErrClosed.
type readCloser struct {
	data []byte
	off  int
	n    int
}

func (r *readCloser) Read(p []byte) (int, error) {
	if r.off >= r.n {
		return 0, fmt.Errorf("read capture: %w", io.ErrClosedPipe)
	}
	max := r.n - r.off
	if len(p) > max {
		p = p[:max]
	}
	copied := copy(p, r.data[r.off:])
	r.off += copied
	if copied == 0 {
		return 0, fmt.Errorf("read capture: %w", io.ErrClosedPipe)
	}
	return copied, nil
}

func TestEarlyReaderClose(t *testing.T) {
	conns := testConns(400)
	data := encode(t, conns)
	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 64} {
			t.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(t *testing.T) {
				verify := checkGoroutines(t)
				defer verify()

				r := &readCloser{data: data, n: len(data) / 2}
				delivered := 0
				counts, err := Stream(context.Background(), r,
					Config{Workers: workers, Depth: 8, Ordered: true, BatchSize: batch},
					func(it Item) error { delivered++; return nil })
				// Depending on where the close lands, the codec reports it
				// either as a corrupt record (mid-record) or passes the raw
				// read error through (record boundary).
				if !errors.Is(err, capture.ErrCorrupt) && !errors.Is(err, io.ErrClosedPipe) {
					t.Errorf("err = %v, want ErrCorrupt or ErrClosedPipe", err)
				}
				// Everything decoded before the close drains through.
				if int64(delivered) != counts.Decoded {
					t.Errorf("delivered %d of %d decoded", delivered, counts.Decoded)
				}
				if delivered == 0 {
					t.Error("no good prefix delivered")
				}
			})
		}
	}
}

// TestSinkErrorDrains pins down shutdown on sink failure under load:
// workers blocked sending results must exit, not leak.
func TestSinkErrorDrains(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 64} {
			t.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(t *testing.T) {
				verify := checkGoroutines(t)
				defer verify()

				sentinel := errors.New("sink exploded")
				src := newEndlessSource()
				delivered := 0
				_, err := Run(context.Background(), src,
					Config{Workers: workers, Depth: 4, BatchSize: batch},
					func(it Item) error {
						delivered++
						if delivered == 30 {
							return sentinel
						}
						return nil
					})
				if !errors.Is(err, sentinel) {
					t.Errorf("err = %v, want sink error", err)
				}
			})
		}
	}
}

// TestConcurrentRuns exercises several pipelines sharing one Metrics
// and one classifier — the multi-PoP shape — under the race detector.
func TestConcurrentRuns(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	conns := testConns(200)
	data := encode(t, conns)
	var m Metrics
	const runs = 4
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		go func() {
			_, err := Stream(context.Background(), bytes.NewReader(data),
				Config{Workers: 4, Depth: 8, Metrics: &m}, nil)
			errs <- err
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Snapshot().Classified; got != int64(runs*len(conns)) {
		t.Errorf("shared metrics classified = %d, want %d", got, runs*len(conns))
	}
}

// TestConcurrentRunsWithTelemetry is the telemetry-enabled variant of
// TestConcurrentRuns: several pipelines share one Metrics AND one
// Telemetry while a scraper goroutine continuously renders and
// validates the exposition — the live-scrape-during-runs shape the
// metrics server produces. Meaningful under -race.
func TestConcurrentRunsWithTelemetry(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	conns := testConns(200)
	data := encode(t, conns)
	tel := NewTelemetry(nil)
	var m Metrics
	const runs = 4

	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	go func() {
		var firstErr error
		for {
			select {
			case <-stop:
				scrapeErr <- firstErr
				return
			default:
			}
			var buf bytes.Buffer
			if err := tel.Registry().WritePrometheus(&buf); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("write: %w", err)
			}
			if err := telemetry.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("validate: %w\n%s", err, buf.String())
			}
			var js bytes.Buffer
			if err := tel.Registry().WriteJSON(&js); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("json: %w", err)
			}
		}
	}()

	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		go func() {
			_, err := Stream(context.Background(), bytes.NewReader(data),
				Config{Workers: 4, Depth: 8, Metrics: &m, Telemetry: tel}, nil)
			errs <- err
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-scrapeErr; err != nil {
		t.Fatalf("live scrape failed: %v", err)
	}

	want := int64(runs * len(conns))
	if got := m.Snapshot().Classified; got != want {
		t.Errorf("shared metrics classified = %d, want %d", got, want)
	}
	var buf bytes.Buffer
	if err := tel.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf(`tamperdetect_pipeline_records_total{stage="classified"} %d`, want); !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Errorf("final exposition missing %q:\n%s", want, buf.String())
	}
}

// TestSnapshotDeltaConcurrentRuns is the Metrics.Delta regression
// test: while several runs feed one shared Metrics, a watcher takes
// Snapshot/Delta pairs and asserts the five monotonic counters never
// move backwards and every delta is non-negative (Dropped is store-
// based, so it is exempt mid-run; see the Delta doc). After the runs
// finish, the delta from the zero snapshot must equal the final
// snapshot.
func TestSnapshotDeltaConcurrentRuns(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	conns := testConns(300)
	data := encode(t, conns)
	var m Metrics
	const runs = 4

	start := m.Snapshot() // all-zero baseline
	stop := make(chan struct{})
	watchErr := make(chan error, 1)
	go func() {
		prev := m.Snapshot()
		var firstErr error
		for {
			select {
			case <-stop:
				watchErr <- firstErr
				return
			default:
			}
			d := m.Delta(prev)
			if d.Decoded < 0 || d.Classified < 0 || d.Tampering < 0 || d.Delivered < 0 || d.Errors < 0 {
				if firstErr == nil {
					firstErr = fmt.Errorf("negative delta: %+v", d)
				}
			}
			// Serialize the delta while the runs are still feeding the
			// atomics — the fleet push path does exactly this, and a
			// Counts must be a value copy that never races the live
			// Metrics it came from (the race detector enforces it).
			back, err := DecodeCounts(wire.NewDecoder(d.AppendWire(nil)))
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("delta round trip: %w", err)
				}
			} else if back != d {
				if firstErr == nil {
					firstErr = fmt.Errorf("delta round trip changed: %+v vs %+v", back, d)
				}
			}
			cur := m.Snapshot()
			if cur.Decoded < prev.Decoded || cur.Classified < prev.Classified ||
				cur.Tampering < prev.Tampering || cur.Delivered < prev.Delivered ||
				cur.Errors < prev.Errors {
				if firstErr == nil {
					firstErr = fmt.Errorf("snapshot went backwards: %+v then %+v", prev, cur)
				}
			}
			prev = cur
		}
	}()

	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		go func() {
			_, err := Stream(context.Background(), bytes.NewReader(data),
				Config{Workers: 4, Depth: 8, Metrics: &m}, nil)
			errs <- err
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-watchErr; err != nil {
		t.Fatal(err)
	}

	final := m.Snapshot()
	if d := m.Delta(start); d != final {
		t.Errorf("Delta(zero) = %+v, want the full snapshot %+v", d, final)
	}
	if d := m.Delta(final); (d != Counts{}) {
		t.Errorf("Delta(final) = %+v, want all-zero", d)
	}
	if final.Classified != int64(runs*len(conns)) {
		t.Errorf("classified = %d, want %d", final.Classified, runs*len(conns))
	}
}

// poisonSource yields records verbatim, including nil entries —
// unlike SliceSource it does not skip them, so a nil reaches the
// classifier and panics there (capture.Reconstruct dereferences it).
type poisonSource struct {
	conns []*capture.Connection
	i     int
}

func (s *poisonSource) Next() (*capture.Connection, error) {
	if s.i >= len(s.conns) {
		return nil, io.EOF
	}
	c := s.conns[s.i]
	s.i++
	return c, nil
}

// TestClassifierPanicContained feeds records that make the classifier
// panic, mixed among valid ones, and asserts the pipeline's poisoned-
// record contract in both delivery modes: the run completes without
// deadlock, every record (poisoned included) reaches the sink exactly
// once, panics are counted in Counts.Errors, ordered delivery never
// stalls on the gap, and no goroutine leaks.
func TestClassifierPanicContained(t *testing.T) {
	for _, ordered := range []bool{false, true} {
		for _, batch := range []int{1, 64} {
			t.Run(fmt.Sprintf("ordered=%v/batch=%d", ordered, batch), func(t *testing.T) {
				defer checkGoroutines(t)()
				valid := testConns(300)
				var mixed []*capture.Connection
				poisoned := 0
				for i, c := range valid {
					if i%50 == 25 {
						mixed = append(mixed, nil)
						poisoned++
					}
					mixed = append(mixed, c)
				}
				seen := make(map[int]bool)
				var errItems, okItems int
				next := 0
				counts, err := Run(context.Background(), &poisonSource{conns: mixed},
					Config{Workers: 8, Ordered: ordered, BatchSize: batch},
					func(it Item) error {
						if seen[it.Index] {
							return fmt.Errorf("index %d delivered twice", it.Index)
						}
						seen[it.Index] = true
						if ordered {
							if it.Index != next {
								return fmt.Errorf("ordered gap: got %d, want %d", it.Index, next)
							}
							next++
						}
						if it.Err != nil {
							errItems++
							if it.Conn != nil {
								return fmt.Errorf("index %d: Err set on valid record", it.Index)
							}
						} else {
							okItems++
						}
						return nil
					})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if errItems != poisoned || okItems != len(valid) {
					t.Errorf("sink saw %d poisoned + %d valid, want %d + %d",
						errItems, okItems, poisoned, len(valid))
				}
				if counts.Errors != int64(poisoned) {
					t.Errorf("Counts.Errors = %d, want %d", counts.Errors, poisoned)
				}
				if counts.Delivered != int64(len(mixed)) {
					t.Errorf("Counts.Delivered = %d, want %d", counts.Delivered, len(mixed))
				}
				if counts.Classified != int64(len(valid)) {
					t.Errorf("Counts.Classified = %d, want %d", counts.Classified, len(valid))
				}
			})
		}
	}
}
