package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/trace"
)

// The parallel decode path. The sequential Run pipeline decodes every
// record on one source goroutine, which caps throughput at the decode
// rate no matter how many classify workers run. ScanTDCAP restructures
// the front end for TDCAP streams:
//
//	scanner ──raw slabs──▶ decode+classify ×W ──▶ sink
//
// One scanner goroutine finds record boundaries (capture.Scanner: a
// header walk plus one memcpy per record, far cheaper than decoding)
// and hands batches of raw record bytes to the workers, which decode
// AND classify, so the expensive half of ingest scales with the pool.
//
// Slab ownership is strict and explicit: the scanner writes a slab
// only before sending its batch; after the send it takes a fresh one
// from the pool. A worker returns the slab to the pool as soon as its
// batch is decoded, before classification, so slabs recycle quickly.
// Decoded Connections live in per-batch storage that recycles after
// the sink runs (NextInto-style Packets/Payload capacity reuse), which
// keeps the steady state allocation-free; sinks and observers must not
// retain *capture.Connection past the call, exactly as for Run.

// maxSlabBytes flushes a raw batch early when its slab grows past this
// size, so a run of huge records cannot pin unbounded memory behind
// one batch.
const maxSlabBytes = 1 << 20

// rawBatch is a batch of undecoded records: one contiguous byte slab
// plus record boundaries. Record i is slab[offs[i]:offs[i+1]], and its
// pipeline index is first+i (indexes stay contiguous per batch, which
// ordered delivery relies on).
type rawBatch struct {
	first int
	slab  []byte
	offs  []int32
	// Trace context, set by the scanner only when a Tracer is
	// attached: the batch's scan span (parent for the downstream
	// stage spans) and the enqueue timestamp (queue-wait start).
	scanSpan uint64
	enqNS    int64
}

// itemBatch is a decoded batch: the items the sink sees plus the
// Connection storage their Conn pointers alias. The storage recycles
// with the batch; its Packets/Payload capacity survives reuse.
type itemBatch struct {
	items []Item
	conns []capture.Connection
	// Trace context carried from the raw batch to the sink stage
	// (meaningful only when a Tracer is attached).
	scanSpan uint64
	shard    int32
}

// safeClassify contains a classifier panic to the one record that
// caused it, converting it to an Item error (see Run).
func safeClassify(cl *core.Classifier, s *core.Scratch, c *capture.Connection) (res core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = core.Result{}
			err = fmt.Errorf("pipeline: classifier panic: %v", r)
		}
	}()
	return cl.ClassifyWith(c, s), nil
}

// decodeClassifyBatch is the shared worker body of ScanTDCAP and
// ShardedScan: decode rb's records into ib's reusable Connection
// storage, return the slab to its pool (before classification, so
// slabs recycle quickly), then classify, tally, and observe. worker is
// the caller's stable worker index for per-worker observers; observe
// may be nil.
func decodeClassifyBatch(rb *rawBatch, ib *itemBatch, putRaw func(*rawBatch),
	cl *core.Classifier, scratch *core.Scratch,
	m *Metrics, tel *Telemetry, worker int, observe func(int, Item),
	rt *runTrace, ring *trace.Ring, shard int32) *itemBatch {
	n := len(rb.offs) - 1
	first := rb.first
	ib.conns = ib.conns[:cap(ib.conns)]
	for len(ib.conns) < n {
		ib.conns = append(ib.conns, capture.Connection{})
	}
	var decodeStart time.Time
	if tel != nil {
		decodeStart = time.Now()
	}
	var decSpan uint64
	var trDecStart int64
	if rt != nil {
		ib.scanSpan, ib.shard = rb.scanSpan, shard
		trDecStart = nowNS()
		// queue-wait: scanner enqueue → this pickup, on the worker's
		// ring (async in the Chrome export — see trace.QueueWaitName).
		rt.emit(ring, rt.queueWait, rt.t.NewSpanID(), rb.scanSpan,
			rb.enqNS, trDecStart, int32(worker), shard, int64(first), int32(n))
		decSpan = rt.t.NewSpanID()
	}
	for i := 0; i < n; i++ {
		c := &ib.conns[i]
		it := Item{Index: first + i, Conn: c}
		traceRec := rt != nil && rt.sampled(first+i)
		var trRecStart int64
		if traceRec {
			trRecStart = nowNS()
		}
		if err := capture.DecodeRecord(rb.slab[rb.offs[i]:rb.offs[i+1]], c); err != nil {
			it.Conn, it.Err = nil, fmt.Errorf("pipeline: decode: %w", err)
		}
		if traceRec {
			rt.emit(ring, rt.decodeRec, rt.t.NewSpanID(), decSpan,
				trRecStart, nowNS(), int32(worker), shard, int64(first+i), 1)
		}
		ib.items = append(ib.items, it)
	}
	putRaw(rb) // slab ownership returns to the scanner's pool
	var classifyStart time.Time
	if tel != nil {
		classifyStart = time.Now()
		tel.stageLat[stageDecode].Observe(classifyStart.Sub(decodeStart).Nanoseconds())
	}
	var clsSpan uint64
	var trClsStart int64
	if rt != nil {
		trClsStart = nowNS()
		rt.emit(ring, rt.decode, decSpan, ib.scanSpan,
			trDecStart, trClsStart, int32(worker), shard, int64(first), int32(n))
		clsSpan = rt.t.NewSpanID()
	}
	for i := range ib.items {
		it := &ib.items[i]
		traceRec := rt != nil && rt.sampled(it.Index)
		var trRecStart int64
		if traceRec {
			trRecStart = nowNS()
		}
		if it.Err == nil {
			it.Res, it.Err = safeClassify(cl, scratch, it.Conn)
			if it.Err != nil && rt != nil {
				rt.t.Flight().Record("ERROR", "classifier panic contained",
					trace.A("record", it.Index), trace.A("worker", worker), trace.A("err", it.Err))
			}
		}
		if it.Err != nil {
			m.errors.Add(1)
		} else {
			m.classified.Add(1)
			if it.Res.Signature.IsTampering() {
				m.tampering.Add(1)
			}
		}
		if tel != nil {
			tel.observeSig(worker, *it)
		}
		if traceRec {
			rt.emit(ring, rt.classifyRec, rt.t.NewSpanID(), clsSpan,
				trRecStart, nowNS(), int32(worker), shard, int64(it.Index), 1)
		}
	}
	var observeStart time.Time
	if tel != nil {
		observeStart = time.Now()
		tel.stageLat[stageClassify].Observe(observeStart.Sub(classifyStart).Nanoseconds())
	}
	var obsSpan uint64
	var trObsStart int64
	if rt != nil {
		trObsStart = nowNS()
		rt.emit(ring, rt.classify, clsSpan, ib.scanSpan,
			trClsStart, trObsStart, int32(worker), shard, int64(first), int32(n))
		obsSpan = rt.t.NewSpanID()
	}
	if observe != nil {
		for i := range ib.items {
			traceRec := rt != nil && rt.sampled(ib.items[i].Index)
			var trRecStart int64
			if traceRec {
				trRecStart = nowNS()
			}
			observe(worker, ib.items[i])
			if traceRec {
				rt.emit(ring, rt.observeRec, rt.t.NewSpanID(), obsSpan,
					trRecStart, nowNS(), int32(worker), shard, int64(ib.items[i].Index), 1)
			}
		}
		if tel != nil {
			tel.stageLat[stageObserve].Observe(time.Since(observeStart).Nanoseconds())
		}
		if rt != nil {
			rt.emit(ring, rt.observe, obsSpan, ib.scanSpan,
				trObsStart, nowNS(), int32(worker), shard, int64(first), int32(n))
		}
	}
	return ib
}

// ScanTDCAP streams a TDCAP capture through the parallel decode
// pipeline: a scanner goroutine splits r into raw record batches and
// the worker pool decodes and classifies them. Semantics match Run
// over a ReaderSource exactly — same Counts accounting, same ordered/
// unordered delivery, same drain-the-good-prefix behaviour on a
// corrupt tail — only the work placement differs. Stream uses this
// path by default; Config.SequentialDecode restores the old one.
func ScanTDCAP(ctx context.Context, r io.Reader, cfg Config, sink Sink) (Counts, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = DefaultDepth
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if batch > depth {
		batch = depth
	}
	cl := cfg.Classifier
	if cl == nil {
		cl = core.NewClassifier(core.DefaultConfig())
	}
	tel := cfg.Telemetry
	m := cfg.Metrics
	if m == nil {
		if tel != nil {
			m = tel.Metrics()
		} else {
			m = &Metrics{}
		}
	}
	if tel != nil {
		tel.attach(m)
	}
	if sink == nil {
		sink = func(Item) error { return nil }
	}
	// Producer ring plan: 0 = the scanner, 1 = the deliver stage,
	// 2+w = worker w. Rings are grabbed once per goroutine.
	rt := newRunTrace(cfg.Tracer)
	var scanRing, sinkRing *trace.Ring
	if rt != nil {
		scanRing = rt.t.Ring(0)
		rt.t.LabelRing(0, "scan/0")
		sinkRing = rt.t.Ring(1)
		rt.t.LabelRing(1, "sink")
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	chanCap := depth / batch
	if chanCap < 1 {
		chanCap = 1
	}
	raw := make(chan *rawBatch, chanCap)      // scan → decode+classify
	results := make(chan *itemBatch, chanCap) // decode+classify → deliver

	// Both batch kinds recycle through pools. Raw slabs keep their byte
	// capacity; item batches keep their Connection storage (and, inside
	// it, Packets/Payload capacity) so steady-state decode allocates
	// nothing.
	rawPool := sync.Pool{New: func() any {
		return &rawBatch{slab: make([]byte, 0, batch*512), offs: make([]int32, 1, batch+1)}
	}}
	getRaw := func() *rawBatch {
		rb := rawPool.Get().(*rawBatch)
		rb.slab = rb.slab[:0]
		rb.offs = rb.offs[:1] // offs[0] == 0, the first record's start
		return rb
	}
	putRaw := func(rb *rawBatch) { rawPool.Put(rb) }
	itemPool := sync.Pool{New: func() any { return &itemBatch{} }}
	getItems := func() *itemBatch {
		ib := itemPool.Get().(*itemBatch)
		ib.items = ib.items[:0]
		return ib
	}
	putItems := func(ib *itemBatch) {
		b := ib.items[:cap(ib.items)]
		clear(b) // don't pin delivered Results (domains, etc.)
		ib.items = b[:0]
		itemPool.Put(ib)
	}

	// Scan stage: one goroutine splits the stream into raw batches. A
	// slab is written only before its batch is sent; after the send the
	// scanner takes a fresh (or recycled) one, so workers own their
	// slabs exclusively. Errors behave like Run's source stage: stop
	// scanning but do NOT cancel, so the good prefix drains and the
	// error surfaces once the pipeline is empty (tamperscan's exit 3).
	var srcErr error // written before scanDone closes
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		defer close(raw)
		sc := capture.NewScanner(r)
		var batchStart time.Time
		var lastBytes int64
		if tel != nil {
			batchStart = time.Now()
		}
		var trScanStart int64
		if rt != nil {
			trScanStart = nowNS()
		}
		cur := getRaw()
		first := 0
		flush := func() bool {
			n := len(cur.offs) - 1
			if n == 0 {
				return true
			}
			if tel != nil {
				tel.stageLat[stageScan].Observe(time.Since(batchStart).Nanoseconds())
				b := sc.BytesRead()
				tel.capBytes.Add(b - lastBytes)
				lastBytes = b
			}
			cur.first = first
			if rt != nil {
				// The scan span and the batch's trace context must be
				// written before the send: after it the workers own cur.
				now := nowNS()
				cur.scanSpan = rt.t.NewSpanID()
				cur.enqNS = now
				rt.emit(scanRing, rt.scan, cur.scanSpan, rt.t.Root(),
					trScanStart, now, -1, -1, int64(first), int32(n))
			}
			select {
			case raw <- cur:
				if tel != nil {
					tel.queueDecos.Set(int64(len(raw)) * int64(batch))
					batchStart = time.Now()
				}
				if rt != nil {
					trScanStart = nowNS()
				}
				first += n
				cur = getRaw()
				return true
			case <-ctx.Done():
				return false
			}
		}
		for {
			slab, err := sc.Next(cur.slab)
			if err == io.EOF {
				flush()
				return
			}
			if err != nil {
				m.errors.Add(1)
				srcErr = err
				flush()
				return
			}
			cur.slab = slab
			cur.offs = append(cur.offs, int32(len(slab)))
			m.decoded.Add(1)
			if (len(cur.offs)-1 >= batch || len(cur.slab) >= maxSlabBytes) && !flush() {
				return
			}
		}
	}()

	// Decode+classify stage: each worker decodes its batch's records
	// into the batch's own reusable Connection storage, returns the
	// slab, then classifies. A decode error on one record (impossible
	// for scanner-approved bytes, but contained anyway) poisons only
	// that item, like a classifier panic.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wcl := *cl // private instance: no false sharing across workers
			var scratch core.Scratch
			var wring *trace.Ring
			if rt != nil {
				wring = rt.t.Ring(2 + worker)
				rt.t.LabelRing(2+worker, "worker/"+itoa(worker))
			}
			for {
				// Receive under the context so cancellation releases workers
				// even while the scanner is blocked inside an
				// uninterruptible read (see Run).
				var rb *rawBatch
				select {
				case b, ok := <-raw:
					if !ok {
						return
					}
					rb = b
				case <-ctx.Done():
					return
				}
				ib := decodeClassifyBatch(rb, getItems(), putRaw, &wcl, &scratch, m, tel, worker, cfg.Observe, rt, wring, -1)
				select {
				case results <- ib:
					if tel != nil {
						tel.queueRes.Set(int64(len(results)) * int64(batch))
					}
				case <-ctx.Done():
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Deliver stage, on the caller's goroutine; identical to Run's.
	var sinkErr error
	stopped := false
	deliver := func(it Item) {
		if stopped || ctx.Err() != nil {
			return
		}
		switch err := sink(it); {
		case err == nil:
			m.delivered.Add(1)
		case errors.Is(err, ErrStop):
			stopped = true
			cancel()
		default:
			m.errors.Add(1)
			sinkErr = fmt.Errorf("pipeline: sink: %w", err)
			stopped = true
			cancel()
		}
	}
	deliverBatch := func(ib *itemBatch) {
		var sinkStart time.Time
		if tel != nil {
			sinkStart = time.Now()
		}
		var snkSpan uint64
		var trSinkStart int64
		if rt != nil {
			trSinkStart = nowNS()
			snkSpan = rt.t.NewSpanID()
		}
		for i := range ib.items {
			if rt != nil && rt.sampled(ib.items[i].Index) {
				s := nowNS()
				deliver(ib.items[i])
				rt.emit(sinkRing, rt.sinkRec, rt.t.NewSpanID(), snkSpan,
					s, nowNS(), -1, ib.shard, int64(ib.items[i].Index), 1)
				continue
			}
			deliver(ib.items[i])
		}
		if tel != nil {
			tel.stageLat[stageSink].Observe(time.Since(sinkStart).Nanoseconds())
		}
		if rt != nil {
			rt.emit(sinkRing, rt.sink, snkSpan, ib.scanSpan,
				trSinkStart, nowNS(), -1, ib.shard, int64(ib.items[0].Index), int32(len(ib.items)))
		}
		putItems(ib)
	}
	if cfg.Ordered {
		// Reorder buffer keyed by each batch's first index; the scanner
		// fills batches with contiguous indexes, exactly like Run's
		// decoder, so first-index order is record order.
		pending := make(map[int]*itemBatch)
		next := 0
		for ib := range results {
			pending[ib.items[0].Index] = ib
			for {
				nb, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next += len(nb.items)
				deliverBatch(nb)
			}
		}
	} else {
		for ib := range results {
			deliverBatch(ib)
		}
	}
	// As in Run: don't hang on a scanner blocked in an uninterruptible
	// read when the context was cancelled; srcErr is read only once the
	// scan goroutine has finished.
	srcDone := false
	select {
	case <-scanDone:
		srcDone = true
	case <-ctx.Done():
		select {
		case <-scanDone:
			srcDone = true
		default:
		}
	}
	if tel != nil {
		tel.queueDecos.Set(0)
		tel.queueRes.Set(0)
	}

	counts := m.Snapshot()
	counts.Dropped = counts.Decoded - counts.Delivered
	m.dropped.Store(counts.Dropped)

	switch {
	case sinkErr != nil:
		return counts, sinkErr
	case srcDone && srcErr != nil:
		return counts, fmt.Errorf("pipeline: source: %w", srcErr)
	case ctx.Err() != nil && !stopped:
		return counts, ctx.Err()
	}
	return counts, nil
}
