package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/telemetry"
)

// TestTelemetryExposition runs an instrumented pipeline over a known
// stream and checks the exposed series against the run's ground
// truth: record counters, per-signature totals, stage histograms,
// queue gauges, and capture throughput.
func TestTelemetryExposition(t *testing.T) {
	conns := testConns(300)
	data := encode(t, conns)
	tel := NewTelemetry(nil)

	counts, err := Stream(context.Background(), bytes.NewReader(data),
		Config{Workers: 4, Telemetry: tel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Classified != int64(len(conns)) {
		t.Fatalf("classified %d of %d", counts.Classified, len(conns))
	}

	var buf bytes.Buffer
	if err := tel.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := telemetry.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}

	for _, want := range []string{
		fmt.Sprintf(`tamperdetect_pipeline_records_total{stage="decoded"} %d`, len(conns)),
		fmt.Sprintf(`tamperdetect_pipeline_records_total{stage="classified"} %d`, len(conns)),
		fmt.Sprintf(`tamperdetect_pipeline_records_total{stage="delivered"} %d`, len(conns)),
		fmt.Sprintf(`tamperdetect_capture_bytes_total %d`, len(data)),
		fmt.Sprintf(`tamperdetect_capture_records_total %d`, len(conns)),
		`tamperdetect_pipeline_queue_depth_records{queue="decoded"} 0`,
		`tamperdetect_pipeline_queue_depth_records{queue="results"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}

	// Per-signature counters must total the classified records, and
	// the tampering disposition must match the pipeline's counter.
	var sigTotal int64
	for s := core.Signature(0); s < core.NumSignatures; s++ {
		sigTotal += tel.sig[s].Value()
	}
	if sigTotal != counts.Classified {
		t.Errorf("signature counters total %d, want %d", sigTotal, counts.Classified)
	}
	if got := tel.disp[dispTampering].Value(); got != counts.Tampering {
		t.Errorf("tampering disposition = %d, want %d", got, counts.Tampering)
	}
	var dispTotal int64
	for i := 0; i < numDispositions; i++ {
		dispTotal += tel.disp[i].Value()
	}
	if dispTotal != counts.Classified {
		t.Errorf("disposition counters total %d, want %d", dispTotal, counts.Classified)
	}

	// Every stage that ran must have at least one per-batch latency
	// observation (observe is skipped: no Observe hook was set).
	for _, st := range []int{stageDecode, stageClassify, stageSink} {
		if s := tel.stageLat[st].Snapshot(); s.Count == 0 {
			t.Errorf("stage %s has no latency observations", stageNames[st])
		}
	}
	if s := tel.stageLat[stageObserve].Snapshot(); s.Count != 0 {
		t.Errorf("observe stage has %d observations without an Observe hook", s.Count)
	}

	// With an Observe hook the observe stage is timed too.
	_, err = Stream(context.Background(), bytes.NewReader(data),
		Config{Workers: 2, Telemetry: tel, Observe: func(int, Item) {}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := tel.stageLat[stageObserve].Snapshot(); s.Count == 0 {
		t.Error("observe stage untimed despite Observe hook")
	}
}

// TestTelemetryMetricsFallback: a run with Telemetry but no Metrics
// uses the Telemetry's own counter block, and an explicit Metrics
// takes precedence while the exposed series follow it.
func TestTelemetryMetricsFallback(t *testing.T) {
	conns := testConns(50)
	data := encode(t, conns)
	tel := NewTelemetry(nil)
	if _, err := Stream(context.Background(), bytes.NewReader(data), Config{Telemetry: tel}, nil); err != nil {
		t.Fatal(err)
	}
	if got := tel.Metrics().Snapshot().Classified; got != int64(len(conns)) {
		t.Fatalf("fallback metrics classified = %d, want %d", got, len(conns))
	}

	var m Metrics
	if _, err := Stream(context.Background(), bytes.NewReader(data), Config{Telemetry: tel, Metrics: &m}, nil); err != nil {
		t.Fatal(err)
	}
	if got := tel.Metrics().Snapshot().Classified; got != int64(len(conns)) {
		t.Fatal("explicit Metrics leaked into fallback block")
	}
	var buf bytes.Buffer
	if err := tel.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`tamperdetect_pipeline_records_total{stage="classified"} %d`, len(conns))
	if !strings.Contains(buf.String(), want) {
		t.Errorf("records_total did not follow the explicit Metrics:\n%s", buf.String())
	}
}

// TestTelemetryHotPathAllocationFree compares per-record heap
// allocations with telemetry off vs on over the same in-memory
// stream. The contract is 0 extra allocs/record (the benchmark
// BenchmarkStreamTelemetryOverhead records the precise figure); the
// bound here is loose enough for fixed per-run overhead but far below
// 1 alloc/record, so any per-record allocation fails.
func TestTelemetryHotPathAllocationFree(t *testing.T) {
	base := testConns(500)
	conns := make([]*capture.Connection, 0, 40000)
	for len(conns) < 40000 {
		conns = append(conns, base...)
	}
	tel := NewTelemetry(nil)
	run := func(cfg Config) float64 {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := Run(context.Background(), NewSliceSource(conns), cfg, nil); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(len(conns))
	}
	run(Config{Workers: 1})                 // warm classifier tables and pools
	run(Config{Workers: 1, Telemetry: tel}) // warm telemetry series
	off := run(Config{Workers: 1})
	on := run(Config{Workers: 1, Telemetry: tel})
	if extra := on - off; extra > 0.02 {
		t.Errorf("telemetry adds %.4f allocs/record (off %.4f, on %.4f), want ~0", extra, off, on)
	}
}
