package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/trace"
)

// traceProfile runs Stream over data with a profiling tracer attached
// and returns every span it emitted.
func traceProfile(t *testing.T, data []byte, cfg Config, sampleEvery int) []trace.Span {
	t.Helper()
	tr := trace.New(trace.Config{
		TraceID:     0xfeed,
		SampleEvery: sampleEvery,
		MaxProfile:  1 << 20,
	})
	cfg.Tracer = tr
	if _, err := Stream(context.Background(), bytes.NewReader(data), cfg, nil); err != nil {
		t.Fatal(err)
	}
	if d := tr.ProfileDropped(); d != 0 {
		t.Fatalf("profile dropped %d spans; raise MaxProfile", d)
	}
	return tr.TakeProfile()
}

// TestTraceStageSpanCoverageAndLineage checks that a traced scan run
// emits every stage span with the documented parentage: batch spans
// parent to their batch's scan span, record spans parent to their
// stage's batch span, and per-record spans appear exactly at the
// head-sampled indexes.
func TestTraceStageSpanCoverageAndLineage(t *testing.T) {
	const n, every = 300, 64
	data := encode(t, testConns(n))
	cfg := Config{Workers: 3, BatchSize: 32, Observe: func(worker int, it Item) {}}
	spans := traceProfile(t, data, cfg, every)

	byID := make(map[uint64]trace.Span, len(spans))
	byName := make(map[string][]trace.Span)
	for _, s := range spans {
		if s.TraceID != 0xfeed {
			t.Fatalf("span %q carries trace %x, want feed", s.Name, s.TraceID)
		}
		byID[s.SpanID] = s
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range []string{
		SpanScan, trace.QueueWaitName, SpanDecode, SpanClassify,
		SpanObserve, SpanSink,
		SpanDecode + ".record", SpanClassify + ".record",
		SpanObserve + ".record", SpanSink + ".record",
	} {
		if len(byName[name]) == 0 {
			t.Errorf("no %q spans emitted", name)
		}
	}

	// Batch spans parent to a scan span; record spans parent to a
	// batch span of their own stage.
	for _, s := range spans {
		switch {
		case s.Name == SpanScan:
			if s.Parent != 0 {
				t.Errorf("scan span parents to %x, want root (0)", s.Parent)
			}
		case strings.HasSuffix(s.Name, ".record"):
			p, ok := byID[s.Parent]
			if !ok {
				t.Errorf("%s record span %d: parent %x not emitted", s.Name, s.Record, s.Parent)
				continue
			}
			if want := strings.TrimSuffix(s.Name, ".record"); p.Name != want {
				t.Errorf("%s record span parents to %q, want %q", s.Name, p.Name, want)
			}
			if s.Record%every != 0 || s.Count != 1 {
				t.Errorf("record span %s at index %d count %d: not head-sampled", s.Name, s.Record, s.Count)
			}
			if s.Record < p.Record || s.Record >= p.Record+int64(p.Count) {
				t.Errorf("%s record %d outside parent batch [%d,%d)", s.Name, s.Record, p.Record, p.Record+int64(p.Count))
			}
		default:
			p, ok := byID[s.Parent]
			if !ok {
				t.Errorf("%s span (record %d): parent %x not emitted", s.Name, s.Record, s.Parent)
				continue
			}
			if p.Name != SpanScan {
				t.Errorf("%s span parents to %q, want %q", s.Name, p.Name, SpanScan)
			}
		}
	}

	// Every sampled index gets exactly one record span per stage.
	for _, stage := range []string{SpanDecode, SpanClassify, SpanObserve, SpanSink} {
		got := make(map[int64]int)
		for _, s := range byName[stage+".record"] {
			got[s.Record]++
		}
		for i := int64(0); i < n; i += every {
			if got[i] != 1 {
				t.Errorf("%s.record at index %d emitted %d times, want 1", stage, i, got[i])
			}
		}
		if len(got) != (n+every-1)/every {
			t.Errorf("%s.record covers %d indexes, want %d", stage, len(got), (n+every-1)/every)
		}
	}

	// Batch spans cover every record exactly once per stage.
	for _, stage := range []string{SpanScan, SpanDecode, SpanClassify, SpanSink} {
		var covered int64
		for _, s := range byName[stage] {
			covered += int64(s.Count)
		}
		if covered != n {
			t.Errorf("%s batch spans cover %d records, want %d", stage, covered, n)
		}
	}
}

// TestTraceShardedScanCarriesShard checks that ShardedScan stamps the
// owning segment on its spans: scan spans appear for every shard, and
// worker/sink spans inherit the shard of the batch they process.
func TestTraceShardedScanCarriesShard(t *testing.T) {
	const n, shards = 400, 4
	data := encodeIndexed(t, testConns(n), 25)
	tr := trace.New(trace.Config{SampleEvery: 64, MaxProfile: 1 << 20})
	cfg := Config{Workers: 3, BatchSize: 32, Tracer: tr}
	src := shardedSource(t, data, shards)
	if _, _, _, err := collectSharded(t, src, cfg, n); err != nil {
		t.Fatal(err)
	}
	spans := tr.TakeProfile()

	scanShards := make(map[int32]bool)
	for _, s := range spans {
		switch s.Name {
		case SpanScan:
			if s.Shard < 0 || s.Shard >= shards {
				t.Fatalf("scan span with shard %d, want [0,%d)", s.Shard, shards)
			}
			scanShards[s.Shard] = true
		case SpanDecode, SpanClassify, SpanSink:
			if s.Shard < 0 || s.Shard >= shards {
				t.Errorf("%s span with shard %d, want [0,%d)", s.Name, s.Shard, shards)
			}
		}
	}
	if len(scanShards) != shards {
		t.Errorf("scan spans cover %d shards, want %d", len(scanShards), shards)
	}
}

// canonicalSpanKeys reduces a span set to its timing-free identity:
// the sorted multiset of (name, record, count, shard) keys. Worker
// assignment, span IDs, and wall-clock times legitimately vary between
// runs; which work was traced must not.
func canonicalSpanKeys(spans []trace.Span) string {
	keys := make([]string, len(spans))
	for i, s := range spans {
		keys[i] = fmt.Sprintf("%s|%d|%d|%d", s.Name, s.Record, s.Count, s.Shard)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// TestTraceSampledSetDeterministic checks the reproducibility
// contract: head sampling is keyed on record index alone, so two runs
// over the same capture trace byte-identical span sets (modulo timing
// and worker placement) at any worker count.
func TestTraceSampledSetDeterministic(t *testing.T) {
	data := encode(t, testConns(300))
	var want string
	for _, workers := range []int{1, 4, 16} {
		for run := 0; run < 2; run++ {
			spans := traceProfile(t, data, Config{Workers: workers, BatchSize: 32}, 32)
			got := canonicalSpanKeys(spans)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("workers=%d run=%d traced a different span set:\ngot:\n%s\nwant:\n%s",
					workers, run, got, want)
			}
		}
	}
}

// TestTraceHotPathAllocationFree pins the tracing hot-path contract:
// with a Tracer attached but per-record sampling off, the scan path
// allocates nothing extra per record — batch spans land in
// preallocated ring slots via atomic stores. Mirrors the telemetry
// allocation test; the bound tolerates fixed per-run setup (rings,
// interning) but is far below one allocation per record.
func TestTraceHotPathAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	base := testConns(500)
	var all []*capture.Connection
	for len(all) < 40000 {
		all = append(all, base...)
	}
	all = all[:40000]
	data := encode(t, all)

	run := func(traced bool) float64 {
		cfg := Config{Workers: 4}
		if traced {
			cfg.Tracer = trace.New(trace.Config{SampleEvery: 0})
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := Stream(context.Background(), bytes.NewReader(data), cfg, nil); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(len(all))
	}
	run(false) // warm pools
	run(true)
	off := run(false)
	on := run(true)
	if extra := on - off; extra > 0.02 {
		t.Errorf("tracer (sampling off) costs %.4f extra allocs/record (off %.4f, on %.4f), want ~0",
			extra, off, on)
	}
}

// TestTraceTracezScrapeDuringShutdown races live /debug/tracez scrapes
// against span emission and a mid-run graceful cancel: scrapes must
// stay consistent (valid JSON, matching trace ID) while workers emit,
// and nothing may leak when the run is torn down under them.
func TestTraceTracezScrapeDuringShutdown(t *testing.T) {
	defer checkGoroutines(t)()
	base := testConns(400)
	var all []*capture.Connection
	for i := 0; i < 25; i++ {
		all = append(all, base...)
	}
	data := encode(t, all)

	tr := trace.New(trace.Config{TraceID: 0xfeed, SampleEvery: 8})
	h := trace.TracezHandler(tr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var delivered atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := Stream(ctx, bytes.NewReader(data), Config{Workers: 4, Tracer: tr}, func(Item) error {
			if delivered.Add(1) == int64(len(all)/2) {
				cancel() // graceful mid-run shutdown
			}
			return nil
		})
		done <- err
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tracez?format=json", nil))
				if rec.Code != 200 {
					t.Errorf("tracez scrape: status %d", rec.Code)
					return
				}
				var view struct {
					TraceID string `json:"trace_id"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
					t.Errorf("tracez scrape not JSON: %v", err)
					return
				}
			}
		}()
	}

	err := <-done
	close(stop)
	wg.Wait()
	if err != nil && err != context.Canceled {
		t.Fatalf("Stream: %v", err)
	}
	// One final scrape after shutdown still serves the run's spans.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tracez?format=json", nil))
	if !bytes.Contains(rec.Body.Bytes(), []byte("000000000000feed")) {
		t.Errorf("post-run tracez scrape missing trace ID: %s", rec.Body.Bytes())
	}
}

// TestTracePanicRecordsFlightEvent checks that classifier panic
// containment leaves evidence in the flight recorder: a poisoned
// record produces a structured "classifier panic contained" event with
// the record index attached.
func TestTracePanicRecordsFlightEvent(t *testing.T) {
	fl := trace.NewFlight(32)
	tr := trace.New(trace.Config{Flight: fl})
	valid := testConns(100)
	mixed := append([]*capture.Connection{}, valid[:50]...)
	mixed = append(mixed, nil) // poisons the classifier (nil deref)
	mixed = append(mixed, valid[50:]...)

	counts, err := Run(context.Background(), &poisonSource{conns: mixed},
		Config{Workers: 2, Tracer: tr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Errors != 1 {
		t.Fatalf("counts.Errors = %d, want 1", counts.Errors)
	}
	var hit bool
	for _, ev := range fl.Events() {
		if ev.Msg != "classifier panic contained" {
			continue
		}
		hit = true
		var rec bool
		for _, a := range ev.Attrs {
			if a.Key == "record" && a.Value == "50" {
				rec = true
			}
		}
		if !rec {
			t.Errorf("panic event missing record=50 attr: %+v", ev)
		}
	}
	if !hit {
		t.Errorf("no flight event for contained panic; events: %+v", fl.Events())
	}
}
