package pipeline

// Tests for the parallel decode path (ScanTDCAP): result parity with
// the sequential path at every worker count, slab ownership under the
// race detector, goroutine hygiene on cancel/early-close/sink-error,
// the corrupt-tail partial-results contract, and the decode-scaling
// regression gate.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/workload"
)

// collectResults streams data and returns each delivered Result by
// record index, plus the run's counts and error.
func collectResults(t *testing.T, data []byte, cfg Config, n int) ([]core.Result, Counts, error) {
	t.Helper()
	out := make([]core.Result, n)
	seen := make([]bool, n)
	counts, err := Stream(context.Background(), bytes.NewReader(data), cfg, func(it Item) error {
		if it.Err != nil {
			return fmt.Errorf("item %d: %w", it.Index, it.Err)
		}
		if it.Index < 0 || it.Index >= n {
			return fmt.Errorf("item index %d out of range", it.Index)
		}
		if seen[it.Index] {
			return fmt.Errorf("item %d delivered twice", it.Index)
		}
		seen[it.Index] = true
		out[it.Index] = it.Res
		return nil
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("record %d never delivered", i)
		}
	}
	return out, counts, err
}

// TestScanMatchesSequentialByteParity is the e2e parity gate for the
// parallel decode path: a fixed-seed 60k-connection scenario must
// yield, at workers 1, 4, and 16, the exact Result-for-Result output
// of both the sequential-decode pipeline and the plain batch loop.
func TestScanMatchesSequentialByteParity(t *testing.T) {
	total := e2eTotal(t)
	s, err := workload.BuildScenario("scan-parity", total, 72, 4242)
	if err != nil {
		t.Fatal(err)
	}
	conns := s.Run(0)
	data := encode(t, conns)

	// Reference: batch classification in record order.
	cl := core.NewClassifier(core.DefaultConfig())
	want := make([]core.Result, len(conns))
	for i, c := range conns {
		want[i] = cl.Classify(c)
	}

	// Sequential-decode pipeline (the legacy work placement).
	seqRes, seqCounts, err := collectResults(t, data,
		Config{Workers: 4, Ordered: true, SequentialDecode: true}, len(conns))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if seqCounts.Decoded != int64(len(conns)) {
		t.Fatalf("sequential decoded %d of %d", seqCounts.Decoded, len(conns))
	}
	for i := range want {
		if seqRes[i] != want[i] {
			t.Fatalf("sequential record %d: got %+v, want %+v", i, seqRes[i], want[i])
		}
	}

	// Parallel decode at each worker count, ordered and unordered.
	for _, workers := range []int{1, 4, 16} {
		for _, ordered := range []bool{true, false} {
			t.Run(fmt.Sprintf("workers=%d/ordered=%v", workers, ordered), func(t *testing.T) {
				got, counts, err := collectResults(t, data,
					Config{Workers: workers, Ordered: ordered, BatchSize: 64}, len(conns))
				if err != nil {
					t.Fatal(err)
				}
				if counts.Decoded != int64(len(conns)) || counts.Delivered != int64(len(conns)) {
					t.Fatalf("counts %+v, want %d decoded and delivered", counts, len(conns))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestScanOrderedDelivery pins strict index order from the reorder
// buffer under small batches and many workers.
func TestScanOrderedDelivery(t *testing.T) {
	data := encode(t, testConns(500))
	next := 0
	_, err := Stream(context.Background(), bytes.NewReader(data),
		Config{Workers: 8, BatchSize: 3, Depth: 16, Ordered: true},
		func(it Item) error {
			if it.Index != next {
				return fmt.Errorf("index %d delivered, want %d", it.Index, next)
			}
			next++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if next != 500 {
		t.Fatalf("delivered %d of 500", next)
	}
}

// TestScanSlabChurn runs the scan path with deliberately hostile
// recycling pressure — many workers, tiny batches, shallow queues —
// and checks every Result against a precomputed per-index expectation.
// Any scanner write into a handed-off slab, or cross-batch Connection
// aliasing, shows up as a wrong Result here (and as a report under
// -race, which scripts/check.sh runs this test suite with).
func TestScanSlabChurn(t *testing.T) {
	conns := testConns(4000)
	data := encode(t, conns)
	cl := core.NewClassifier(core.DefaultConfig())
	want := make([]core.Result, len(conns))
	for i, c := range conns {
		want[i] = cl.Classify(c)
	}
	for _, ordered := range []bool{true, false} {
		delivered := 0
		_, err := Stream(context.Background(), bytes.NewReader(data),
			Config{Workers: 8, BatchSize: 2, Depth: 4, Ordered: ordered},
			func(it Item) error {
				if it.Err != nil {
					return it.Err
				}
				if it.Res != want[it.Index] {
					return fmt.Errorf("record %d classified %+v, want %+v", it.Index, it.Res, want[it.Index])
				}
				delivered++
				return nil
			})
		if err != nil {
			t.Fatalf("ordered=%v: %v", ordered, err)
		}
		if delivered != len(conns) {
			t.Fatalf("ordered=%v: delivered %d of %d", ordered, delivered, len(conns))
		}
	}
}

// TestScanCorruptTailPartialResults pins the exit-3 contract on the
// parallel path: a capture whose tail is corrupt still delivers every
// record decoded before the corruption, and the run reports ErrCorrupt
// after the good prefix has drained.
func TestScanCorruptTailPartialResults(t *testing.T) {
	conns := testConns(300)
	data := encode(t, conns)
	bad := append(append([]byte(nil), data...), 0xC0, 0x09, 0xFF) // marker then junk ipver
	for _, workers := range []int{1, 4} {
		delivered := 0
		counts, err := Stream(context.Background(), bytes.NewReader(bad),
			Config{Workers: workers, Ordered: true, BatchSize: 16},
			func(it Item) error { delivered++; return nil })
		if !errors.Is(err, capture.ErrCorrupt) {
			t.Fatalf("workers=%d: err = %v, want ErrCorrupt", workers, err)
		}
		if delivered != len(conns) {
			t.Fatalf("workers=%d: delivered %d, want the full %d-record good prefix", workers, delivered, len(conns))
		}
		if counts.Decoded != int64(len(conns)) || counts.Errors == 0 {
			t.Fatalf("workers=%d: counts %+v", workers, counts)
		}
	}
}

// TestScanCancelMidStream cancels a scan-path run partway through and
// requires a prompt, leak-free exit reporting context.Canceled.
func TestScanCancelMidStream(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	data := encode(t, testConns(5000))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Stream(ctx, bytes.NewReader(data),
			Config{Workers: 4, BatchSize: 8, Depth: 16, Ordered: true},
			func(it Item) error {
				delivered++
				if delivered == 100 {
					cancel()
				}
				time.Sleep(10 * time.Microsecond) // keep the queues full
				return nil
			})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want nil or context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("scan pipeline did not shut down after cancel")
	}
}

// TestScanSinkErrorDrains: a failing sink must stop a scan-path run
// without leaking the scanner or workers, even with full queues.
func TestScanSinkErrorDrains(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	data := encode(t, testConns(5000))
	sentinel := errors.New("sink exploded")
	delivered := 0
	_, err := Stream(context.Background(), bytes.NewReader(data),
		Config{Workers: 8, BatchSize: 4, Depth: 8},
		func(it Item) error {
			delivered++
			if delivered == 30 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sink error", err)
	}
}

// TestScanErrStop: ErrStop ends a scan-path run early and cleanly.
func TestScanErrStop(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	data := encode(t, testConns(5000))
	delivered := 0
	counts, err := Stream(context.Background(), bytes.NewReader(data),
		Config{Workers: 4, BatchSize: 8},
		func(it Item) error {
			delivered++
			if delivered == 50 {
				return ErrStop
			}
			return nil
		})
	if err != nil {
		t.Fatalf("ErrStop surfaced as %v", err)
	}
	if counts.Delivered != 49 {
		t.Errorf("delivered count %d, want 49", counts.Delivered)
	}
}

// TestScanEarlyPipeClose: the writer side of a pipe vanishing must
// surface like any source read error, with the good prefix delivered.
func TestScanEarlyPipeClose(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	data := encode(t, testConns(800))
	pr, pw := io.Pipe()
	go func() {
		pw.Write(data[:len(data)/2])
		pw.CloseWithError(io.ErrClosedPipe)
	}()
	delivered := 0
	counts, err := Stream(context.Background(), pr,
		Config{Workers: 4, Ordered: true, BatchSize: 16},
		func(it Item) error { delivered++; return nil })
	if !errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, capture.ErrCorrupt) {
		t.Errorf("err = %v, want ErrClosedPipe or ErrCorrupt", err)
	}
	if int64(delivered) != counts.Decoded {
		t.Errorf("delivered %d of %d decoded", delivered, counts.Decoded)
	}
	if delivered == 0 {
		t.Error("no good prefix delivered")
	}
}

// TestScanTelemetrySplit pins the scan/decode stage attribution: on
// the parallel path both the scanner stage and the per-worker decode
// stage must record latency observations.
func TestScanTelemetrySplit(t *testing.T) {
	data := encode(t, testConns(500))
	tel := NewTelemetry(nil)
	counts, err := Stream(context.Background(), bytes.NewReader(data),
		Config{Workers: 2, BatchSize: 16, Telemetry: tel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Classified != 500 {
		t.Fatalf("classified %d of 500", counts.Classified)
	}
	for _, st := range []int{stageScan, stageDecode, stageClassify, stageSink} {
		if s := tel.stageLat[st].Snapshot(); s.Count == 0 {
			t.Errorf("stage %q has no latency observations on the scan path", stageNames[st])
		}
	}

	// The sequential path never touches the scan stage.
	tel2 := NewTelemetry(nil)
	if _, err := Stream(context.Background(), bytes.NewReader(data),
		Config{Workers: 2, SequentialDecode: true, Telemetry: tel2}, nil); err != nil {
		t.Fatal(err)
	}
	if s := tel2.stageLat[stageScan].Snapshot(); s.Count != 0 {
		t.Errorf("sequential path recorded %d scan-stage observations", s.Count)
	}
	if s := tel2.stageLat[stageDecode].Snapshot(); s.Count == 0 {
		t.Error("sequential path recorded no decode-stage observations")
	}
}

// TestDecodeParallelScalingGate is the scaling regression gate wired
// into scripts/check.sh: with TAMPERDETECT_SCALING_GATE=1 on a host
// with >=4 CPUs, the parallel decode path at 16 workers must ingest at
// least 2x the records/sec of 1 worker. On smaller hosts it skips —
// parallel speedup cannot exist without parallel hardware — and the
// check script reports the skip.
func TestDecodeParallelScalingGate(t *testing.T) {
	if os.Getenv("TAMPERDETECT_SCALING_GATE") == "" {
		t.Skip("set TAMPERDETECT_SCALING_GATE=1 to run the decode scaling gate")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("scaling gate needs >=4 CPUs, have %d", runtime.NumCPU())
	}
	s, err := workload.BuildScenario("scan-scaling", 120000, 72, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := encode(t, s.Run(0))

	throughput := func(workers int) float64 {
		best := 0.0
		for run := 0; run < 3; run++ {
			start := time.Now()
			counts, err := Stream(context.Background(), bytes.NewReader(data),
				Config{Workers: workers, BatchSize: 64}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rps := float64(counts.Classified) / time.Since(start).Seconds(); rps > best {
				best = rps
			}
		}
		return best
	}
	one := throughput(1)
	sixteen := throughput(16)
	t.Logf("decode+classify throughput: workers=1 %.0f rec/s, workers=16 %.0f rec/s (%.2fx)",
		one, sixteen, sixteen/one)
	if sixteen < 2*one {
		t.Errorf("scaling regression: workers=16 (%.0f rec/s) is only %.2fx workers=1 (%.0f rec/s); gate requires >=2x",
			sixteen, sixteen/one, one)
	}
}
