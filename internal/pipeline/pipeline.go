// Package pipeline implements the streaming classification pipeline:
// a source of connection records fans out across a pool of classifier
// workers and fans back into a single ordered or unordered sink, with
// bounded channel depths (backpressure end to end), per-stage
// counters, context-based cancellation, and a graceful drain on both
// normal EOF and early shutdown.
//
// This is the paper's deployment shape: the detector runs continuously
// over a sampled stream of connections rather than over batches loaded
// into memory. Every stage holds O(Workers + Depth) records, so
// arbitrarily large captures stream in constant memory:
//
//	source (decode) ──▶ [depth] ──▶ classify ×W ──▶ [depth] ──▶ sink
//
// A slow sink throttles the workers, which throttle the decoder, which
// throttles the source. Cancelling the context stops every stage;
// records already decoded but not delivered are counted as Dropped.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
)

// DefaultDepth is the per-stage channel depth when Config.Depth is 0.
const DefaultDepth = 256

// ErrStop may be returned by a Sink to stop the pipeline early without
// reporting an error: Run cancels the remaining work, drains, and
// returns nil.
var ErrStop = errors.New("pipeline: stop")

// Item is one classified connection flowing out of the pipeline.
type Item struct {
	// Index is the record's zero-based decode position. In ordered
	// mode the sink sees indexes 0, 1, 2, … with no gaps.
	Index int
	// Conn is the decoded connection record.
	Conn *capture.Connection
	// Res is the classifier's verdict; zero-valued when Err is set.
	Res core.Result
	// Err reports a classification failure (a classifier panic on this
	// record, recovered). The item still flows to the sink — ordered
	// mode depends on every index arriving — so sinks that care must
	// check Err before trusting Res.
	Err error
}

// Sink consumes classified items. It is always invoked from a single
// goroutine — never concurrently — so it may update plain state.
// Returning a non-nil error stops the pipeline; returning ErrStop
// stops it without error.
type Sink func(Item) error

// Config tunes the pipeline.
type Config struct {
	// Workers is the classifier pool size; 0 means GOMAXPROCS.
	Workers int
	// Depth bounds each inter-stage channel; 0 means DefaultDepth.
	// Total in-flight records are at most 2*Depth + Workers + 1.
	Depth int
	// Ordered delivers items to the sink in decode order (index 0, 1,
	// 2, …). Unordered delivery has lower latency skew under uneven
	// classify costs; ordered delivery is deterministic.
	Ordered bool
	// Classifier overrides the classifier; nil builds one with
	// core.DefaultConfig(). A single *core.Classifier is shared by all
	// workers (it is concurrency-safe).
	Classifier *core.Classifier
	// Metrics, when non-nil, receives the live per-stage counters so
	// callers can observe a run in flight. Counters are cumulative
	// across runs unless the caller Resets between them.
	Metrics *Metrics
}

// Run streams records from src through the classifier pool into sink
// and blocks until the pipeline has fully drained: on return no
// pipeline goroutine is left running, regardless of how the run ended.
//
// Run returns the final counter snapshot and the first error among
// the sink's, the source's, and the context's. A nil sink counts and
// discards. EOF from the source is a clean end of stream.
func Run(ctx context.Context, src Source, cfg Config, sink Sink) (Counts, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = DefaultDepth
	}
	cl := cfg.Classifier
	if cl == nil {
		cl = core.NewClassifier(core.DefaultConfig())
	}
	m := cfg.Metrics
	if m == nil {
		m = &Metrics{}
	}
	if sink == nil {
		sink = func(Item) error { return nil }
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	decoded := make(chan Item, depth) // decode → classify (Res unset)
	results := make(chan Item, depth) // classify → deliver

	// Decode stage: a single goroutine pulls records off the source
	// and enqueues them. It stops on EOF, on a source error, or when
	// the context is cancelled (backpressure propagates here: a full
	// decoded channel blocks the source).
	var srcErr error // written before decodeDone closes
	decodeDone := make(chan struct{})
	go func() {
		defer close(decodeDone)
		defer close(decoded)
		for i := 0; ; i++ {
			c, err := src.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				// Stop decoding but do NOT cancel: the records already
				// decoded drain through and are delivered, mirroring the
				// batch reader's return-the-good-prefix behaviour. The
				// error surfaces once the pipeline is empty.
				m.errors.Add(1)
				srcErr = err
				return
			}
			m.decoded.Add(1)
			select {
			case decoded <- Item{Index: i, Conn: c}:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Classify stage: the worker pool. Workers exit when the decode
	// channel closes (drain) or the context is cancelled mid-send.
	// A classifier panic on one record is contained to that record: it
	// is converted to Item.Err, counted as an error, and still
	// forwarded so ordered delivery never stalls on the gap — one
	// poisoned record must not take down the whole stream.
	classify := func(c *capture.Connection) (res core.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				res = core.Result{}
				err = fmt.Errorf("pipeline: classifier panic: %v", r)
			}
		}()
		return cl.Classify(c), nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range decoded {
				it.Res, it.Err = classify(it.Conn)
				if it.Err != nil {
					m.errors.Add(1)
				} else {
					m.classified.Add(1)
					if it.Res.Signature.IsTampering() {
						m.tampering.Add(1)
					}
				}
				select {
				case results <- it:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Deliver stage, on the caller's goroutine. After a sink error or
	// cancellation we keep draining the results channel (so blocked
	// workers can exit) but stop invoking the sink.
	var sinkErr error
	stopped := false
	deliver := func(it Item) {
		if stopped || ctx.Err() != nil {
			return
		}
		switch err := sink(it); {
		case err == nil:
			m.delivered.Add(1)
		case errors.Is(err, ErrStop):
			stopped = true
			cancel()
		default:
			m.errors.Add(1)
			sinkErr = fmt.Errorf("pipeline: sink: %w", err)
			stopped = true
			cancel()
		}
	}
	if cfg.Ordered {
		// Reorder buffer: holds out-of-order results until their
		// predecessors arrive. Bounded by the records in flight, so at
		// most 2*Depth + Workers entries.
		pending := make(map[int]Item)
		next := 0
		for it := range results {
			pending[it.Index] = it
			for {
				n, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				deliver(n)
			}
		}
	} else {
		for it := range results {
			deliver(it)
		}
	}
	<-decodeDone

	counts := m.Snapshot()
	counts.Dropped = counts.Decoded - counts.Delivered
	m.dropped.Store(counts.Dropped)

	switch {
	case sinkErr != nil:
		return counts, sinkErr
	case srcErr != nil:
		return counts, fmt.Errorf("pipeline: source: %w", srcErr)
	case ctx.Err() != nil && !stopped:
		return counts, ctx.Err()
	}
	return counts, nil
}

// Stream decodes TDCAP connection records incrementally from r and
// runs them through the pipeline; see Run.
func Stream(ctx context.Context, r io.Reader, cfg Config, sink Sink) (Counts, error) {
	return Run(ctx, NewReaderSource(r), cfg, sink)
}
