// Package pipeline implements the streaming classification pipeline:
// a source of connection records fans out across a pool of classifier
// workers and fans back into a single ordered or unordered sink, with
// bounded channel depths (backpressure end to end), per-stage
// counters, context-based cancellation, and a graceful drain on both
// normal EOF and early shutdown.
//
// This is the paper's deployment shape: the detector runs continuously
// over a sampled stream of connections rather than over batches loaded
// into memory. Every stage holds O(Workers + Depth + BatchSize)
// records, so arbitrarily large captures stream in constant memory:
//
//	source (decode) ──▶ [depth] ──▶ classify ×W ──▶ [depth] ──▶ sink
//
// Records move through the inter-stage channels in pooled batches of
// Config.BatchSize, which amortises channel synchronisation over many
// records; each worker owns a private classifier instance and scratch
// arena so the per-record classify cost is allocation-free.
//
// A slow sink throttles the workers, which throttle the decoder, which
// throttles the source. Cancelling the context stops every stage;
// records already decoded but not delivered are counted as Dropped.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/trace"
)

// DefaultDepth is the per-stage channel depth (in records) when
// Config.Depth is 0.
const DefaultDepth = 256

// DefaultBatchSize is the records-per-batch granularity of the
// inter-stage channels when Config.BatchSize is 0.
const DefaultBatchSize = 64

// ErrStop may be returned by a Sink to stop the pipeline early without
// reporting an error: Run cancels the remaining work, drains, and
// returns nil.
var ErrStop = errors.New("pipeline: stop")

// Item is one classified connection flowing out of the pipeline.
type Item struct {
	// Index is the record's zero-based decode position. In ordered
	// mode the sink sees indexes 0, 1, 2, … with no gaps.
	Index int
	// Conn is the decoded connection record.
	Conn *capture.Connection
	// Res is the classifier's verdict; zero-valued when Err is set.
	Res core.Result
	// Err reports a classification failure (a classifier panic on this
	// record, recovered). The item still flows to the sink — ordered
	// mode depends on every index arriving — so sinks that care must
	// check Err before trusting Res.
	Err error
}

// Sink consumes classified items. It is always invoked from a single
// goroutine — never concurrently — so it may update plain state.
// Returning a non-nil error stops the pipeline; returning ErrStop
// stops it without error.
type Sink func(Item) error

// Config tunes the pipeline.
type Config struct {
	// Workers is the classifier pool size; 0 means GOMAXPROCS.
	Workers int
	// Depth bounds each inter-stage channel, in records; 0 means
	// DefaultDepth. Together with BatchSize it bounds the records in
	// flight: each channel holds max(1, Depth/BatchSize) batches, so at
	// most 2*Depth + (Workers+2)*BatchSize records exist between the
	// source and the sink at any instant.
	Depth int
	// BatchSize groups records N at a time through the inter-stage
	// channels, amortising channel synchronisation across the batch; 0
	// means DefaultBatchSize, and values above Depth are clamped to
	// Depth so shallow test pipelines keep tight in-flight bounds.
	// BatchSize 1 reproduces the record-at-a-time pipeline exactly.
	// Delivery semantics are identical at every batch size.
	BatchSize int
	// Ordered delivers items to the sink in decode order (index 0, 1,
	// 2, …). Unordered delivery has lower latency skew under uneven
	// classify costs; ordered delivery is deterministic.
	Ordered bool
	// SequentialDecode makes Stream decode every record on the single
	// source goroutine (the pre-parallel-decode pipeline) instead of
	// the default scanner + decode-in-worker path (see ScanTDCAP).
	// Delivery semantics are identical either way; the sequential path
	// remains chiefly as a baseline and for diagnosing the parallel
	// one. Run is unaffected: non-TDCAP sources are always sequential.
	SequentialDecode bool
	// Classifier overrides the classifier; nil builds one with
	// core.DefaultConfig(). A single *core.Classifier is shared by all
	// workers (it is concurrency-safe).
	Classifier *core.Classifier
	// Metrics, when non-nil, receives the live per-stage counters so
	// callers can observe a run in flight. Counters are cumulative
	// across runs unless the caller Resets between them.
	Metrics *Metrics
	// Observe, when non-nil, is invoked from inside the classify stage
	// for every record a worker finishes, before the record is handed
	// downstream. The worker argument is the classifying worker's index
	// in [0, Workers): calls are sequential per worker but concurrent
	// across workers, so observers shard their state per worker index
	// (the aggregating sink in internal/analysis accumulates into
	// shards[worker] and merges after Run returns). Observe sees
	// records in an unspecified cross-worker order, sees items whose
	// Err is set, and — unlike the Sink — may see records that are
	// never delivered when a run stops early; it must not retain the
	// *capture.Connection past the call (batches recycle).
	Observe func(worker int, it Item)
	// Telemetry, when non-nil, streams rich operational metrics from
	// the run into the Telemetry's registry: per-stage latency
	// histograms, queue-depth gauges, per-signature and per-
	// disposition counters, and capture throughput. The per-record
	// cost is two sharded atomic adds (no allocation); stage latency
	// is timed per batch. When Metrics is nil the run also uses
	// Telemetry.Metrics() as its counter block, so the exposed
	// records_total series follow the run automatically.
	Telemetry *Telemetry
	// Tracer, when non-nil, emits per-stage spans for the run into the
	// tracer's ring buffers (see internal/trace): batch-level scan /
	// queue-wait / decode / classify / observe / sink spans always,
	// plus per-record spans for head-sampled record indexes
	// (trace.Config.SampleEvery). Emission is allocation-free; with
	// per-record sampling off the added cost is a few time.Now calls
	// per batch, pinned by TestTraceHotPathAllocationFree and the
	// stream_trace_overhead bench gate.
	Tracer *trace.Tracer
}

// Run streams records from src through the classifier pool into sink
// and blocks until the pipeline has fully drained: on return no
// pipeline goroutine is left running, regardless of how the run ended.
//
// Run returns the final counter snapshot and the first error among
// the sink's, the source's, and the context's. A nil sink counts and
// discards. EOF from the source is a clean end of stream.
func Run(ctx context.Context, src Source, cfg Config, sink Sink) (Counts, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = DefaultDepth
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if batch > depth {
		batch = depth
	}
	cl := cfg.Classifier
	if cl == nil {
		cl = core.NewClassifier(core.DefaultConfig())
	}
	tel := cfg.Telemetry
	m := cfg.Metrics
	if m == nil {
		if tel != nil {
			m = tel.Metrics()
		} else {
			m = &Metrics{}
		}
	}
	if tel != nil {
		tel.attach(m)
	}
	if sink == nil {
		sink = func(Item) error { return nil }
	}
	// Producer ring plan mirrors ScanTDCAP: 0 = the decode (source)
	// goroutine, 1 = the deliver stage, 2+w = worker w. The sequential
	// path emits batch-level spans only — per-record spans belong to
	// the scan paths, where decode runs in the workers.
	rt := newRunTrace(cfg.Tracer)
	var decRing, sinkRing *trace.Ring
	if rt != nil {
		decRing = rt.t.Ring(0)
		rt.t.LabelRing(0, "decode/0")
		sinkRing = rt.t.Ring(1)
		rt.t.LabelRing(1, "sink")
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Channel capacities are expressed in batches so Depth keeps
	// bounding the records in flight regardless of the batch size.
	chanCap := depth / batch
	if chanCap < 1 {
		chanCap = 1
	}
	decoded := make(chan []Item, chanCap) // decode → classify (Res unset)
	results := make(chan []Item, chanCap) // classify → deliver

	// Batches recycle through a pool; a drained batch is cleared before
	// reuse so pooled slices don't pin delivered records.
	pool := sync.Pool{New: func() any {
		b := make([]Item, 0, batch)
		return &b
	}}
	getBatch := func() []Item { return (*pool.Get().(*[]Item))[:0] }
	putBatch := func(b []Item) {
		b = b[:cap(b)]
		clear(b)
		b = b[:0]
		pool.Put(&b)
	}

	// Decode stage: a single goroutine pulls records off the source
	// and enqueues them batch by batch. It stops on EOF, on a source
	// error, or when the context is cancelled (backpressure propagates
	// here: a full decoded channel blocks the source).
	var srcErr error // written before decodeDone closes
	decodeDone := make(chan struct{})
	go func() {
		defer close(decodeDone)
		defer close(decoded)
		// Telemetry: batchStart tracks decode time per batch (excluding
		// time blocked on a full channel, which the queue gauge shows
		// instead); srcBytes feeds capture throughput when the source
		// can report raw bytes consumed.
		var batchStart time.Time
		var lastBytes int64
		srcBytes, _ := src.(byteCounter)
		if tel != nil {
			batchStart = time.Now()
		}
		var trDecStart int64
		if rt != nil {
			trDecStart = nowNS()
		}
		cur := getBatch()
		flush := func() bool {
			if len(cur) == 0 {
				return true
			}
			if tel != nil {
				tel.stageLat[stageDecode].Observe(time.Since(batchStart).Nanoseconds())
				if srcBytes != nil {
					b := srcBytes.BytesRead()
					tel.capBytes.Add(b - lastBytes)
					lastBytes = b
				}
			}
			if rt != nil {
				rt.emit(decRing, rt.decode, rt.t.NewSpanID(), rt.t.Root(),
					trDecStart, nowNS(), -1, -1, int64(cur[0].Index), int32(len(cur)))
			}
			select {
			case decoded <- cur:
				if tel != nil {
					tel.queueDecos.Set(int64(len(decoded)) * int64(batch))
					batchStart = time.Now()
				}
				if rt != nil {
					trDecStart = nowNS()
				}
				cur = getBatch()
				return true
			case <-ctx.Done():
				return false
			}
		}
		for i := 0; ; i++ {
			c, err := src.Next()
			if err == io.EOF {
				flush()
				return
			}
			if err != nil {
				// Stop decoding but do NOT cancel: the records already
				// decoded drain through and are delivered, mirroring the
				// batch reader's return-the-good-prefix behaviour. The
				// error surfaces once the pipeline is empty.
				m.errors.Add(1)
				srcErr = err
				flush()
				return
			}
			m.decoded.Add(1)
			cur = append(cur, Item{Index: i, Conn: c})
			if len(cur) >= batch && !flush() {
				return
			}
		}
	}()

	// Classify stage: the worker pool. Each worker owns a private copy
	// of the (stateless) classifier and a scratch arena, so records
	// classify without shared state or per-record allocation. Workers
	// exit when the decode channel closes (drain) or the context is
	// cancelled mid-send.
	// A classifier panic on one record is contained to that record
	// (safeClassify): it is converted to Item.Err, counted as an error,
	// and still forwarded so ordered delivery never stalls on the gap —
	// one poisoned record must not take down the whole stream.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wcl := *cl // private instance: no false sharing across workers
			var scratch core.Scratch
			var wring *trace.Ring
			if rt != nil {
				wring = rt.t.Ring(2 + worker)
				rt.t.LabelRing(2+worker, "worker/"+itoa(worker))
			}
			for {
				// Receive under the context so cancellation (a signal, a
				// deadline) releases workers even while the decoder is
				// blocked inside an uninterruptible source read.
				var b []Item
				select {
				case bb, ok := <-decoded:
					if !ok {
						return
					}
					b = bb
				case <-ctx.Done():
					return
				}
				var classifyStart time.Time
				if tel != nil {
					classifyStart = time.Now()
				}
				var trClsStart int64
				if rt != nil {
					trClsStart = nowNS()
				}
				for i := range b {
					b[i].Res, b[i].Err = safeClassify(&wcl, &scratch, b[i].Conn)
					if b[i].Err != nil {
						if rt != nil {
							rt.t.Flight().Record("ERROR", "classifier panic contained",
								trace.A("record", b[i].Index), trace.A("worker", worker), trace.A("err", b[i].Err))
						}
						m.errors.Add(1)
					} else {
						m.classified.Add(1)
						if b[i].Res.Signature.IsTampering() {
							m.tampering.Add(1)
						}
					}
					if tel != nil {
						tel.observeSig(worker, b[i])
					}
				}
				var observeStart time.Time
				if tel != nil {
					observeStart = time.Now()
					tel.stageLat[stageClassify].Observe(observeStart.Sub(classifyStart).Nanoseconds())
				}
				var trObsStart int64
				if rt != nil {
					trObsStart = nowNS()
					rt.emit(wring, rt.classify, rt.t.NewSpanID(), rt.t.Root(),
						trClsStart, trObsStart, int32(worker), -1, int64(b[0].Index), int32(len(b)))
				}
				// Observe runs as a second pass over the batch: per-record
				// semantics are unchanged (sequential per worker, before the
				// batch is handed downstream), and its cost is timed apart
				// from the classify cost.
				if cfg.Observe != nil {
					for i := range b {
						cfg.Observe(worker, b[i])
					}
					if tel != nil {
						tel.stageLat[stageObserve].Observe(time.Since(observeStart).Nanoseconds())
					}
					if rt != nil {
						rt.emit(wring, rt.observe, rt.t.NewSpanID(), rt.t.Root(),
							trObsStart, nowNS(), int32(worker), -1, int64(b[0].Index), int32(len(b)))
					}
				}
				select {
				case results <- b:
					if tel != nil {
						tel.queueRes.Set(int64(len(results)) * int64(batch))
					}
				case <-ctx.Done():
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Deliver stage, on the caller's goroutine. After a sink error or
	// cancellation we keep draining the results channel (so blocked
	// workers can exit) but stop invoking the sink.
	var sinkErr error
	stopped := false
	deliver := func(it Item) {
		if stopped || ctx.Err() != nil {
			return
		}
		switch err := sink(it); {
		case err == nil:
			m.delivered.Add(1)
		case errors.Is(err, ErrStop):
			stopped = true
			cancel()
		default:
			m.errors.Add(1)
			sinkErr = fmt.Errorf("pipeline: sink: %w", err)
			stopped = true
			cancel()
		}
	}
	deliverBatch := func(b []Item) {
		var sinkStart time.Time
		if tel != nil {
			sinkStart = time.Now()
		}
		var trSinkStart int64
		var first int64
		if rt != nil {
			trSinkStart = nowNS()
			first = int64(b[0].Index)
		}
		for i := range b {
			deliver(b[i])
		}
		if tel != nil {
			tel.stageLat[stageSink].Observe(time.Since(sinkStart).Nanoseconds())
		}
		if rt != nil {
			rt.emit(sinkRing, rt.sink, rt.t.NewSpanID(), rt.t.Root(),
				trSinkStart, nowNS(), -1, -1, first, int32(len(b)))
		}
		putBatch(b)
	}
	if cfg.Ordered {
		// Reorder buffer: holds out-of-order batches until their
		// predecessors arrive, keyed by first index. The single decoder
		// fills batches with contiguous indexes, so delivering batches in
		// first-index order delivers every record in decode order. Bounded
		// by the batches in flight.
		pending := make(map[int][]Item)
		next := 0
		for b := range results {
			pending[b[0].Index] = b
			for {
				nb, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next += len(nb)
				deliverBatch(nb)
			}
		}
	} else {
		for b := range results {
			deliverBatch(b)
		}
	}
	// Wait for the decoder unless the context was cancelled: a cancelled
	// run must not hang on a source blocked in an uninterruptible read.
	// The decode goroutine exits on its own once the read returns (its
	// channel send selects on ctx.Done); srcErr is read only when it has
	// finished, which is what makes the unsynchronized write safe.
	srcDone := false
	select {
	case <-decodeDone:
		srcDone = true
	case <-ctx.Done():
		select {
		case <-decodeDone:
			srcDone = true
		default:
		}
	}
	if tel != nil {
		// Both channels are fully drained once delivery ends.
		tel.queueDecos.Set(0)
		tel.queueRes.Set(0)
	}

	counts := m.Snapshot()
	counts.Dropped = counts.Decoded - counts.Delivered
	m.dropped.Store(counts.Dropped)

	switch {
	case sinkErr != nil:
		return counts, sinkErr
	case srcDone && srcErr != nil:
		return counts, fmt.Errorf("pipeline: source: %w", srcErr)
	case ctx.Err() != nil && !stopped:
		return counts, ctx.Err()
	}
	return counts, nil
}

// Stream decodes TDCAP connection records incrementally from r and
// runs them through the pipeline. By default it uses the parallel
// decode path (ScanTDCAP): a scanner goroutine finds record
// boundaries and the workers decode and classify, so ingest scales
// with Config.Workers. Config.SequentialDecode selects the original
// decode-on-the-source-goroutine path instead; results and counters
// are identical either way.
func Stream(ctx context.Context, r io.Reader, cfg Config, sink Sink) (Counts, error) {
	if cfg.SequentialDecode {
		return Run(ctx, NewReaderSource(r), cfg, sink)
	}
	return ScanTDCAP(ctx, r, cfg, sink)
}
