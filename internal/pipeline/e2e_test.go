package pipeline

// End-to-end determinism: a seeded workload scenario streamed through
// the pipeline — at several worker counts, through the TDCAP codec,
// and through the streaming simulation source — must produce exactly
// the per-signature histogram of the batch path (classify in a plain
// loop over Run's output). This is the acceptance gate for every
// later scaling PR that touches the pipeline.

import (
	"bytes"
	"context"
	"testing"

	"tamperdetect/internal/core"
	"tamperdetect/internal/workload"
)

// e2eTotal is the fixed-seed scenario size; -short runs a reduced one.
func e2eTotal(t *testing.T) int {
	if testing.Short() {
		return 6000
	}
	return 60000
}

func TestPipelineMatchesBatch(t *testing.T) {
	total := e2eTotal(t)
	s, err := workload.BuildScenario("pipeline-e2e", total, 72, 2023)
	if err != nil {
		t.Fatal(err)
	}
	conns := s.Run(0)
	if len(conns) < total/2 {
		t.Fatalf("scenario produced only %d connections", len(conns))
	}
	want := batchHistogram(conns)
	data := encode(t, conns)
	t.Logf("scenario: %d connections, %d byte capture", len(conns), len(data))

	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 64} {
			for _, ordered := range []bool{false, true} {
				var got [core.NumSignatures]int64
				counts, err := Stream(context.Background(), bytes.NewReader(data),
					Config{Workers: workers, Ordered: ordered, BatchSize: batch},
					func(it Item) error {
						got[it.Res.Signature]++
						return nil
					})
				if err != nil {
					t.Fatalf("workers=%d batch=%d ordered=%v: %v", workers, batch, ordered, err)
				}
				if got != want {
					t.Errorf("workers=%d batch=%d ordered=%v: per-signature histogram diverges from batch path",
						workers, batch, ordered)
					for sig := range got {
						if got[sig] != want[sig] {
							t.Errorf("  %s: pipeline %d, batch %d",
								core.Signature(sig), got[sig], want[sig])
						}
					}
				}
				if counts.Classified != int64(len(conns)) {
					t.Errorf("workers=%d batch=%d ordered=%v: classified %d of %d",
						workers, batch, ordered, counts.Classified, len(conns))
				}
			}
		}
	}
}

// TestPipelineOrderedMatchesBatchOrder pins byte-level determinism of
// the ordered path: connection i delivered by the pipeline is
// connection i of the batch decode, with the identical Result.
func TestPipelineOrderedMatchesBatchOrder(t *testing.T) {
	total := e2eTotal(t) / 4
	s, err := workload.BuildScenario("pipeline-order", total, 48, 7)
	if err != nil {
		t.Fatal(err)
	}
	conns := s.Run(0)
	data := encode(t, conns)
	cl := core.NewClassifier(core.DefaultConfig())

	for _, batchSize := range []int{1, 8, 64} {
		next := 0
		_, err = Stream(context.Background(), bytes.NewReader(data),
			Config{Workers: 16, Ordered: true, Depth: 16, BatchSize: batchSize},
			func(it Item) error {
				if it.Index != next {
					t.Fatalf("batch=%d: index %d delivered, want %d", batchSize, it.Index, next)
				}
				batch := conns[next]
				if it.Conn.SrcIP != batch.SrcIP || it.Conn.SrcPort != batch.SrcPort ||
					len(it.Conn.Packets) != len(batch.Packets) {
					t.Fatalf("batch=%d: connection %d does not round-trip", batchSize, next)
				}
				if res := cl.Classify(batch); it.Res != res {
					t.Fatalf("batch=%d: connection %d: pipeline %v, batch %v",
						batchSize, next, it.Res.Signature, res.Signature)
				}
				next++
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if next != len(conns) {
			t.Fatalf("batch=%d: delivered %d of %d", batchSize, next, len(conns))
		}
	}
}

// TestStreamingSimulationMatchesBatch closes the loop paperbench now
// uses: simulate the scenario through workload's streaming source (no
// materialised slice) into the pipeline and compare against the batch
// path histogram.
func TestStreamingSimulationMatchesBatch(t *testing.T) {
	total := e2eTotal(t) / 4
	s, err := workload.BuildScenario("pipeline-simstream", total, 48, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := batchHistogram(s.Run(0))
	for _, workers := range []int{1, 4} {
		src := s.Stream(workers)
		var got [core.NumSignatures]int64
		_, err := Run(context.Background(), src,
			Config{Workers: workers, Ordered: true},
			func(it Item) error {
				got[it.Res.Signature]++
				return nil
			})
		src.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: streamed-simulation histogram diverges from batch", workers)
		}
	}
}
