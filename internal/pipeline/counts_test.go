package pipeline

import (
	"testing"

	"tamperdetect/internal/wire"
)

func TestCountsWireRoundTrip(t *testing.T) {
	c := Counts{Decoded: 1, Classified: 2, Tampering: 3, Delivered: 4, Errors: 5, Dropped: 6}
	got, err := DecodeCounts(wire.NewDecoder(c.AppendWire(nil)))
	if err != nil {
		t.Fatalf("DecodeCounts: %v", err)
	}
	if got != c {
		t.Errorf("round trip = %+v, want %+v", got, c)
	}

	// Truncation at every byte must error, never panic.
	full := c.AppendWire(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeCounts(wire.NewDecoder(full[:cut])); err == nil {
			t.Errorf("cut=%d: truncated counts decoded cleanly", cut)
		}
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Decoded: 1, Classified: 2, Tampering: 3, Delivered: 4, Errors: 5, Dropped: 6}
	b := Counts{Decoded: 10, Classified: 20, Tampering: 30, Delivered: 40, Errors: 50, Dropped: 60}
	want := Counts{Decoded: 11, Classified: 22, Tampering: 33, Delivered: 44, Errors: 55, Dropped: 66}
	if got := a.Add(b); got != want {
		t.Errorf("Add = %+v, want %+v", got, want)
	}
	if got := a.Add(Counts{}); got != a {
		t.Errorf("Add zero = %+v, want %+v", got, a)
	}
}
