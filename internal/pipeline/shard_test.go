package pipeline

// Tests for the shard-parallel ingest path (ShardedScan): byte parity
// with ScanTDCAP at every shard count — the correctness gate for the
// whole indexed-segment design — plus hostile-index containment,
// partial-results semantics, goroutine hygiene, the worker-index
// contract shared observers rely on, and the shard-scaling gate.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/workload"
)

// encodeIndexed writes conns as an indexed capture (footer appended on
// Flush) at the given interval.
func encodeIndexed(t testing.TB, conns []*capture.Connection, interval int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	if err := w.EnableIndex(interval); err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// shardedSource loads data's footer index and opens a fresh
// SegmentedSource over it. Sources are stateful (each scanner is
// consumed once), so every run gets its own.
func shardedSource(t testing.TB, data []byte, shards int) *capture.SegmentedSource {
	t.Helper()
	idx, err := capture.ReadFooterIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	src, err := capture.NewSegmentedSource(bytes.NewReader(data), int64(len(data)), idx, shards)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// collectSharded runs ShardedScan and returns each delivered Result by
// record index plus a delivered mask — sharded runs that hit a corrupt
// segment legitimately deliver with gaps, so absence is the caller's
// call to judge.
func collectSharded(t *testing.T, src *capture.SegmentedSource, cfg Config, n int) ([]core.Result, []bool, Counts, error) {
	t.Helper()
	out := make([]core.Result, n)
	seen := make([]bool, n)
	counts, err := ShardedScan(context.Background(), src, cfg, func(it Item) error {
		if it.Err != nil {
			return fmt.Errorf("item %d: %w", it.Index, it.Err)
		}
		if it.Index < 0 || it.Index >= n {
			return fmt.Errorf("item index %d out of range", it.Index)
		}
		if seen[it.Index] {
			return fmt.Errorf("item %d delivered twice", it.Index)
		}
		seen[it.Index] = true
		out[it.Index] = it.Res
		return nil
	})
	return out, seen, counts, err
}

// TestShardedScanParity is THE correctness gate for sharded ingest: a
// fixed-seed 60k-connection scenario must yield, at shards 1, 2, 4,
// and 8, ordered and unordered, the exact Result-for-Result output of
// the single-scanner ScanTDCAP path (itself pinned to the batch
// reference in scan_test.go).
func TestShardedScanParity(t *testing.T) {
	total := e2eTotal(t)
	s, err := workload.BuildScenario("shard-parity", total, 72, 4242)
	if err != nil {
		t.Fatal(err)
	}
	conns := s.Run(0)
	data := encodeIndexed(t, conns, 64)

	// Reference: the single-scanner parallel path over the same bytes.
	want, _, wantCounts, err := func() ([]core.Result, []bool, Counts, error) {
		out := make([]core.Result, len(conns))
		seen := make([]bool, len(conns))
		counts, err := ScanTDCAP(context.Background(), bytes.NewReader(data),
			Config{Workers: 4, Ordered: true, BatchSize: 64},
			func(it Item) error {
				seen[it.Index] = true
				out[it.Index] = it.Res
				return nil
			})
		return out, seen, counts, err
	}()
	if err != nil {
		t.Fatalf("ScanTDCAP reference: %v", err)
	}
	if wantCounts.Decoded != int64(len(conns)) {
		t.Fatalf("reference decoded %d of %d", wantCounts.Decoded, len(conns))
	}

	for _, shards := range []int{1, 2, 4, 8} {
		for _, ordered := range []bool{true, false} {
			t.Run(fmt.Sprintf("shards=%d/ordered=%v", shards, ordered), func(t *testing.T) {
				src := shardedSource(t, data, shards)
				got, seen, counts, err := collectSharded(t, src,
					Config{Workers: shards, Ordered: ordered, BatchSize: 64}, len(conns))
				if err != nil {
					t.Fatal(err)
				}
				if counts.Decoded != int64(len(conns)) || counts.Delivered != int64(len(conns)) {
					t.Fatalf("counts %+v, want %d decoded and delivered", counts, len(conns))
				}
				for i := range want {
					if !seen[i] {
						t.Fatalf("record %d never delivered", i)
					}
					if got[i] != want[i] {
						t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
					}
				}
				if br := src.BytesRead(); br != src.Index().DataSize-8 {
					t.Fatalf("aggregate BytesRead %d, want the full %d-byte record area",
						br, src.Index().DataSize-8)
				}
			})
		}
	}
}

// TestShardedScanOrderedDelivery pins strict global index order across
// segment seams under small batches and many shards.
func TestShardedScanOrderedDelivery(t *testing.T) {
	data := encodeIndexed(t, testConns(500), 16)
	src := shardedSource(t, data, 4)
	next := 0
	_, err := ShardedScan(context.Background(), src,
		Config{Workers: 8, BatchSize: 3, Depth: 16, Ordered: true},
		func(it Item) error {
			if it.Index != next {
				return fmt.Errorf("index %d delivered, want %d", it.Index, next)
			}
			next++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if next != 500 {
		t.Fatalf("delivered %d of 500", next)
	}
}

// TestShardedScanObserverContract pins the worker-index contract that
// shared per-worker observers (analysis.Sharded) size themselves by:
// every Observe call carries a worker index in [0, ShardWorkers(w, k)),
// no two shards share an index, and the per-worker tallies sum to the
// record count.
func TestShardedScanObserverContract(t *testing.T) {
	conns := testConns(2000)
	data := encodeIndexed(t, conns, 32)
	for _, tc := range []struct{ workers, shards int }{{2, 4}, {8, 3}, {1, 1}} {
		total := ShardWorkers(tc.workers, tc.shards)
		perWorker := make([]atomic.Int64, total)
		var outOfRange atomic.Int64
		src := shardedSource(t, data, tc.shards)
		cfg := Config{
			Workers: tc.workers,
			Observe: func(worker int, it Item) {
				if worker < 0 || worker >= total {
					outOfRange.Add(1)
					return
				}
				perWorker[worker].Add(1)
			},
		}
		if _, err := ShardedScan(context.Background(), src, cfg, nil); err != nil {
			t.Fatalf("workers=%d shards=%d: %v", tc.workers, tc.shards, err)
		}
		if n := outOfRange.Load(); n != 0 {
			t.Fatalf("workers=%d shards=%d: %d observations outside [0, %d)",
				tc.workers, tc.shards, n, total)
		}
		var sum int64
		for i := range perWorker {
			sum += perWorker[i].Load()
		}
		if sum != int64(len(conns)) {
			t.Fatalf("workers=%d shards=%d: observed %d of %d records",
				tc.workers, tc.shards, sum, len(conns))
		}
	}
}

// TestShardedScanCorruptSegment pins the partial-results contract: a
// corrupt record stops only its own shard, so the delivered set is the
// union of every other segment plus the corrupt segment's good prefix,
// every delivered Result is still correct, and ErrCorrupt surfaces.
func TestShardedScanCorruptSegment(t *testing.T) {
	conns := testConns(300)
	data := encodeIndexed(t, conns, 1)
	idx, err := capture.ReadFooterIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// Stomp the marker byte of record 260 — inside the last of 4
	// segments (records 225..299). The footer checksum only covers the
	// index payload, so the index still loads; the damage must be
	// caught by the shard's scanner, not hidden by it.
	const corruptAt = 260
	bad := append([]byte(nil), data...)
	bad[idx.Offsets[corruptAt]] = 0x09
	src, err := capture.NewSegmentedSource(bytes.NewReader(bad), int64(len(bad)), idx, 4)
	if err != nil {
		t.Fatal(err)
	}

	cl := core.NewClassifier(core.DefaultConfig())
	got, seen, counts, err := collectSharded(t, src,
		Config{Workers: 4, Ordered: true, BatchSize: 8}, len(conns))
	if !errors.Is(err, capture.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	delivered := 0
	for i, s := range seen {
		if !s {
			if i < corruptAt {
				t.Fatalf("record %d (before the corruption) never delivered", i)
			}
			continue
		}
		delivered++
		if want := cl.Classify(conns[i]); got[i] != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want)
		}
	}
	if delivered != corruptAt {
		t.Fatalf("delivered %d records, want exactly the %d-record union of good prefixes",
			delivered, corruptAt)
	}
	if counts.Errors == 0 {
		t.Fatalf("counts %+v, want a recorded error", counts)
	}
}

// TestShardedScanLyingSeamOffset: a checksum-valid index whose seam
// offset points mid-record must fail the run (ErrCorrupt from the
// misaligned shards), never deliver a wrong or duplicate Result.
func TestShardedScanLyingSeamOffset(t *testing.T) {
	conns := testConns(100)
	data := encodeIndexed(t, conns, 1)
	idx, err := capture.ReadFooterIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	lying := *idx
	lying.Offsets = append([]int64(nil), idx.Offsets...)
	// Shift an actual 4-shard seam mid-record (segments are cut by byte
	// balance, so derive the seam instead of assuming point np/2).
	seam := idx.Segments(4)[2].FirstRecord / idx.Interval
	lying.Offsets[seam] += 2
	src, err := capture.NewSegmentedSource(bytes.NewReader(data), int64(len(data)), &lying, 4)
	if err != nil {
		t.Fatal(err)
	}
	cl := core.NewClassifier(core.DefaultConfig())
	got, seen, _, err := collectSharded(t, src,
		Config{Workers: 4, Ordered: false, BatchSize: 8}, len(conns))
	if !errors.Is(err, capture.ErrCorrupt) && !errors.Is(err, capture.ErrBadIndex) {
		t.Fatalf("err = %v, want ErrCorrupt or ErrBadIndex", err)
	}
	for i, s := range seen {
		if !s {
			continue
		}
		if want := cl.Classify(conns[i]); got[i] != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

// TestShardedScanSeamUndercount: an index that undercounts records
// (the last segment scans past its promised count to a clean EOF) must
// surface capture.ErrBadIndex from the seam re-validation — the signal
// tamperscan uses to discard the run and rerun single-scanner.
func TestShardedScanSeamUndercount(t *testing.T) {
	conns := testConns(100)
	data := encodeIndexed(t, conns, 1)
	idx, err := capture.ReadFooterIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	lying := *idx
	lying.Offsets = append([]int64(nil), idx.Offsets[:len(idx.Offsets)-1]...)
	lying.Records = idx.Records - 1 // DataSize unchanged: one unaccounted record
	src, err := capture.NewSegmentedSource(bytes.NewReader(data), int64(len(data)), &lying, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = collectSharded(t, src,
		Config{Workers: 2, Ordered: true, BatchSize: 8}, len(conns))
	if !errors.Is(err, capture.ErrBadIndex) {
		t.Fatalf("err = %v, want ErrBadIndex from the seam check", err)
	}
}

// TestShardedScanEmptyCapture: an indexed capture with zero records
// yields zero segments, zero counts, and no error.
func TestShardedScanEmptyCapture(t *testing.T) {
	data := encodeIndexed(t, nil, 4)
	src := shardedSource(t, data, 8)
	if src.Segments() != 0 {
		t.Fatalf("%d segments for an empty capture", src.Segments())
	}
	counts, err := ShardedScan(context.Background(), src, Config{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Decoded != 0 || counts.Delivered != 0 {
		t.Fatalf("counts %+v for an empty capture", counts)
	}
}

// TestShardedScanTelemetry pins the multi-source throughput accounting
// fix: with several shard scanners feeding one Telemetry, the capture
// bytes counter must equal the whole record area once — per-shard
// deltas summed, not last-shard-wins — and every stage histogram must
// see observations.
func TestShardedScanTelemetry(t *testing.T) {
	data := encodeIndexed(t, testConns(1000), 16)
	src := shardedSource(t, data, 4)
	tel := NewTelemetry(nil)
	counts, err := ShardedScan(context.Background(), src,
		Config{Workers: 4, BatchSize: 16, Telemetry: tel}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Classified != 1000 {
		t.Fatalf("classified %d of 1000", counts.Classified)
	}
	want := src.Index().DataSize - 8
	if got := tel.capBytes.Value(); got != want {
		t.Fatalf("capture bytes counter %d, want %d (the full record area, counted once)", got, want)
	}
	if br := src.BytesRead(); br != want {
		t.Fatalf("aggregate BytesRead %d, want %d", br, want)
	}
	for _, st := range []int{stageScan, stageDecode, stageClassify, stageSink} {
		if s := tel.stageLat[st].Snapshot(); s.Count == 0 {
			t.Errorf("stage %q has no latency observations on the sharded path", stageNames[st])
		}
	}
}

// TestShardedScanCancelMidStream cancels a sharded run partway through
// and requires a prompt, leak-free exit.
func TestShardedScanCancelMidStream(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	data := encodeIndexed(t, testConns(5000), 32)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		src := shardedSource(t, data, 4)
		_, err := ShardedScan(ctx, src,
			Config{Workers: 4, BatchSize: 8, Depth: 16, Ordered: true},
			func(it Item) error {
				delivered++
				if delivered == 100 {
					cancel()
				}
				time.Sleep(10 * time.Microsecond) // keep the queues full
				return nil
			})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want nil or context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sharded pipeline did not shut down after cancel")
	}
}

// TestShardedScanSinkErrorDrains: a failing sink must stop all shards
// without leaking scanners or workers, even with full queues.
func TestShardedScanSinkErrorDrains(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	data := encodeIndexed(t, testConns(5000), 32)
	src := shardedSource(t, data, 4)
	sentinel := errors.New("sink exploded")
	delivered := 0
	_, err := ShardedScan(context.Background(), src,
		Config{Workers: 8, BatchSize: 4, Depth: 8},
		func(it Item) error {
			delivered++
			if delivered == 30 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sink error", err)
	}
}

// TestShardedScanErrStop: ErrStop ends a sharded run early and cleanly.
func TestShardedScanErrStop(t *testing.T) {
	verify := checkGoroutines(t)
	defer verify()

	data := encodeIndexed(t, testConns(5000), 32)
	src := shardedSource(t, data, 4)
	delivered := 0
	counts, err := ShardedScan(context.Background(), src,
		Config{Workers: 4, BatchSize: 8},
		func(it Item) error {
			delivered++
			if delivered == 50 {
				return ErrStop
			}
			return nil
		})
	if err != nil {
		t.Fatalf("ErrStop surfaced as %v", err)
	}
	if counts.Delivered != 49 {
		t.Errorf("delivered count %d, want 49", counts.Delivered)
	}
}

// TestShardWorkers pins the observer-sizing contract.
func TestShardWorkers(t *testing.T) {
	if got := ShardWorkers(4, 2); got != 4 {
		t.Errorf("ShardWorkers(4, 2) = %d, want 4", got)
	}
	if got := ShardWorkers(2, 5); got != 5 {
		t.Errorf("ShardWorkers(2, 5) = %d, want 5", got)
	}
	if got := ShardWorkers(0, 2); got != max(runtime.GOMAXPROCS(0), 2) {
		t.Errorf("ShardWorkers(0, 2) = %d, want max(GOMAXPROCS, 2)", got)
	}
	for _, tc := range []struct{ workers, shards int }{{4, 2}, {2, 5}, {7, 3}, {1, 1}} {
		counts := shardWorkerCounts(tc.workers, tc.shards)
		sum, lo, hi := 0, counts[0], counts[0]
		for _, c := range counts {
			sum += c
			lo, hi = min(lo, c), max(hi, c)
		}
		if sum != ShardWorkers(tc.workers, tc.shards) || hi-lo > 1 || lo < 1 {
			t.Errorf("shardWorkerCounts(%d, %d) = %v", tc.workers, tc.shards, counts)
		}
	}
}

// TestShardedIngestScalingGate is the shard-scaling regression gate
// wired into scripts/check.sh: with TAMPERDETECT_SCALING_GATE=1 on a
// host with >=4 CPUs, sharded ingest at 8 shards must move at least 2x
// the records/sec of 1 shard. On smaller hosts it skips — removing the
// serial scan stage cannot pay without parallel hardware.
func TestShardedIngestScalingGate(t *testing.T) {
	if os.Getenv("TAMPERDETECT_SCALING_GATE") == "" {
		t.Skip("set TAMPERDETECT_SCALING_GATE=1 to run the shard scaling gate")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("scaling gate needs >=4 CPUs, have %d", runtime.NumCPU())
	}
	s, err := workload.BuildScenario("shard-scaling", 120000, 72, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeIndexed(t, s.Run(0), 256)

	throughput := func(shards int) float64 {
		best := 0.0
		for run := 0; run < 3; run++ {
			src := shardedSource(t, data, shards)
			start := time.Now()
			counts, err := ShardedScan(context.Background(), src,
				Config{Workers: shards, BatchSize: 64}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rps := float64(counts.Classified) / time.Since(start).Seconds(); rps > best {
				best = rps
			}
		}
		return best
	}
	one := throughput(1)
	eight := throughput(8)
	t.Logf("sharded ingest throughput: shards=1 %.0f rec/s, shards=8 %.0f rec/s (%.2fx)",
		one, eight, eight/one)
	if eight < 2*one {
		t.Errorf("scaling regression: shards=8 (%.0f rec/s) is only %.2fx shards=1 (%.0f rec/s); gate requires >=2x",
			eight, eight/one, one)
	}
}
