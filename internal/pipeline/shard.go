package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/trace"
)

// The shard-parallel ingest path. ScanTDCAP removed decode from the
// serial stage, but one scanner goroutine still walks every record
// boundary, so scan caps throughput no matter how many workers run.
// ShardedScan removes that last serial stage for indexed captures:
//
//	segment 0: scanner ──raw──▶ decode+classify ×w₀ ──┐
//	segment 1: scanner ──raw──▶ decode+classify ×w₁ ──┼─▶ deliver
//	   ...                                            │
//	segment K: scanner ──raw──▶ decode+classify ×wₖ ──┘
//
// Each shard is an independent mini-pipeline over its own byte range
// of the file (capture.SegmentedSource): its own scanner, its own raw
// channel, its own workers. Nothing in the hot path is shared between
// shards except the atomic Metrics counters and the telemetry
// histograms, both of which are concurrency-safe and order-independent
// by construction, so the merged run is byte-identical to a
// single-scanner ScanTDCAP over the same file — the parity gate in
// shard_test.go holds at shards {1,2,4,8} × ordered {true,false}.
//
// Delivery preserves the Sink contract (single goroutine, no
// retention). Unordered mode interleaves batches from all shards as
// they finish. Ordered mode delivers segments strictly in file order:
// shard k+1's results are buffered only up to its bounded channel
// depth while shard k drains, so memory stays bounded, but later
// shards cannot run ahead of delivery indefinitely — ordered sharded
// ingest is for deterministic output, not for peak throughput.

// ShardWorkers reports the total decode+classify worker count a
// ShardedScan run will use for the given Config.Workers and shard
// count: every shard gets at least one worker, so the total exceeds
// Config.Workers when there are more shards than workers. Callers
// that size per-worker observers (analysis.NewSharded) must use this
// resolved total, and Config.Observe receives worker indexes in
// [0, ShardWorkers(...)).
func ShardWorkers(workers, shards int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if shards < 1 {
		shards = 1
	}
	return max(workers, shards)
}

// shardWorkerCounts splits the resolved worker total across shards,
// front-loading the remainder so counts differ by at most one.
func shardWorkerCounts(workers, shards int) []int {
	total := ShardWorkers(workers, shards)
	counts := make([]int, shards)
	base, extra := total/shards, total%shards
	for i := range counts {
		counts[i] = base
		if i < extra {
			counts[i]++
		}
	}
	return counts
}

// ShardedScan streams an indexed TDCAP capture through per-segment
// mini-pipelines. Semantics match ScanTDCAP over the same file — same
// Counts accounting, same ordered/unordered delivery, same Sink and
// Observe contracts — only the work placement differs. On a clean
// file the output is byte-identical to the single-scanner path.
//
// Error semantics differ in one honest way: a corrupt record stops
// only its own shard, so the delivered "good prefix" is the union of
// every other segment plus the corrupt segment's good prefix — more
// data recovered than a single scanner would manage, never less, and
// the error still surfaces. A seam violation (the index promised a
// boundary that is not one) surfaces as capture.ErrBadIndex; callers
// then rerun with the single-scanner path, which is why a hostile
// index can waste time but cannot corrupt output.
func ShardedScan(ctx context.Context, src *capture.SegmentedSource, cfg Config, sink Sink) (Counts, error) {
	shards := src.Segments()
	depth := cfg.Depth
	if depth <= 0 {
		depth = DefaultDepth
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	if batch > depth {
		batch = depth
	}
	cl := cfg.Classifier
	if cl == nil {
		cl = core.NewClassifier(core.DefaultConfig())
	}
	tel := cfg.Telemetry
	m := cfg.Metrics
	if m == nil {
		if tel != nil {
			m = tel.Metrics()
		} else {
			m = &Metrics{}
		}
	}
	if tel != nil {
		tel.attach(m)
	}
	if sink == nil {
		sink = func(Item) error { return nil }
	}
	counts := func() Counts {
		c := m.Snapshot()
		c.Dropped = c.Decoded - c.Delivered
		m.dropped.Store(c.Dropped)
		return c
	}
	if shards == 0 {
		// Empty capture: nothing to deliver, nothing to fail.
		return counts(), ctx.Err()
	}

	// Producer ring plan: 0..shards-1 = per-shard scanners, shards =
	// the deliver stage, shards+1+w = global worker w. Shard lineage
	// rides every span, so a merged trace still separates per segment.
	rt := newRunTrace(cfg.Tracer)
	var sinkRing *trace.Ring
	if rt != nil {
		for i := 0; i < shards; i++ {
			rt.t.LabelRing(i, "scan/"+itoa(i))
		}
		sinkRing = rt.t.Ring(shards)
		rt.t.LabelRing(shards, "sink")
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	chanCap := depth / batch
	if chanCap < 1 {
		chanCap = 1
	}

	// Pools are shared across shards: sync.Pool's per-P caches keep
	// recycling effectively local, and the ownership protocol (slab
	// written only before send, returned before classify) is per
	// batch, not per shard.
	rawPool := sync.Pool{New: func() any {
		return &rawBatch{slab: make([]byte, 0, batch*512), offs: make([]int32, 1, batch+1)}
	}}
	getRaw := func() *rawBatch {
		rb := rawPool.Get().(*rawBatch)
		rb.slab = rb.slab[:0]
		rb.offs = rb.offs[:1]
		return rb
	}
	putRaw := func(rb *rawBatch) { rawPool.Put(rb) }
	itemPool := sync.Pool{New: func() any { return &itemBatch{} }}
	getItems := func() *itemBatch {
		ib := itemPool.Get().(*itemBatch)
		ib.items = ib.items[:0]
		return ib
	}
	putItems := func(ib *itemBatch) {
		b := ib.items[:cap(ib.items)]
		clear(b)
		ib.items = b[:0]
		itemPool.Put(ib)
	}

	// Scanners are created on this goroutine, before anything runs
	// concurrently, so SegmentedSource.BytesRead can sum them from a
	// telemetry scrape without racing lazy construction.
	for i := 0; i < shards; i++ {
		src.Scanner(i)
	}

	wcounts := shardWorkerCounts(cfg.Workers, shards)
	srcErrs := make([]error, shards)
	scanDone := make([]chan struct{}, shards)
	resCh := make([]chan *itemBatch, shards)

	var wwg sync.WaitGroup // all workers, all shards
	for i := 0; i < shards; i++ {
		seg := src.Segment(i)
		sc := src.Scanner(i)
		raw := make(chan *rawBatch, chanCap)
		resCh[i] = make(chan *itemBatch, chanCap)
		scanDone[i] = make(chan struct{})

		// Scan stage, one per shard: identical to ScanTDCAP's except
		// that record indexes are file-global (segment base + local)
		// and a clean EOF is followed by the seam check.
		go func(shard int) {
			defer close(scanDone[shard])
			defer close(raw)
			var batchStart time.Time
			var lastBytes int64
			if tel != nil {
				batchStart = time.Now()
			}
			var scanRing *trace.Ring
			var trScanStart int64
			if rt != nil {
				scanRing = rt.t.Ring(shard)
				trScanStart = nowNS()
			}
			cur := getRaw()
			first := seg.FirstRecord
			flush := func() bool {
				n := len(cur.offs) - 1
				if n == 0 {
					return true
				}
				if tel != nil {
					tel.stageLat[stageScan].Observe(time.Since(batchStart).Nanoseconds())
					// Per-shard deltas into the shared counter keep the
					// aggregate exact: each shard only ever adds bytes its
					// own scanner consumed.
					b := sc.BytesRead()
					tel.capBytes.Add(b - lastBytes)
					lastBytes = b
				}
				cur.first = first
				if rt != nil {
					now := nowNS()
					cur.scanSpan = rt.t.NewSpanID()
					cur.enqNS = now
					rt.emit(scanRing, rt.scan, cur.scanSpan, rt.t.Root(),
						trScanStart, now, -1, int32(shard), int64(first), int32(n))
				}
				select {
				case raw <- cur:
					if tel != nil {
						tel.queueDecos.Set(int64(len(raw)) * int64(batch))
						batchStart = time.Now()
					}
					if rt != nil {
						trScanStart = nowNS()
					}
					first += n
					cur = getRaw()
					return true
				case <-ctx.Done():
					return false
				}
			}
			for {
				slab, err := sc.Next(cur.slab)
				if err == io.EOF {
					if serr := src.CheckSegment(shard); serr != nil {
						m.errors.Add(1)
						srcErrs[shard] = serr
					}
					flush()
					return
				}
				if err != nil {
					m.errors.Add(1)
					srcErrs[shard] = err
					flush()
					return
				}
				cur.slab = slab
				cur.offs = append(cur.offs, int32(len(slab)))
				m.decoded.Add(1)
				if (len(cur.offs)-1 >= batch || len(cur.slab) >= maxSlabBytes) && !flush() {
					return
				}
			}
		}(i)

		// Decode+classify stage: this shard's workers, with
		// file-global worker indexes so shared per-worker observers
		// (analysis.Sharded, telemetry sharded counters) never collide
		// across shards.
		workerBase := 0
		for j := 0; j < i; j++ {
			workerBase += wcounts[j]
		}
		var swg sync.WaitGroup
		for j := 0; j < wcounts[i]; j++ {
			wwg.Add(1)
			swg.Add(1)
			go func(worker int) {
				defer wwg.Done()
				defer swg.Done()
				wcl := *cl
				var scratch core.Scratch
				var wring *trace.Ring
				if rt != nil {
					wring = rt.t.Ring(shards + 1 + worker)
					rt.t.LabelRing(shards+1+worker, "worker/"+itoa(worker))
				}
				for {
					var rb *rawBatch
					select {
					case b, ok := <-raw:
						if !ok {
							return
						}
						rb = b
					case <-ctx.Done():
						return
					}
					ib := decodeClassifyBatch(rb, getItems(), putRaw, &wcl, &scratch, m, tel, worker, cfg.Observe, rt, wring, int32(i))
					select {
					case resCh[i] <- ib:
						if tel != nil {
							tel.queueRes.Set(int64(len(resCh[i])) * int64(batch))
						}
					case <-ctx.Done():
						return
					}
				}
			}(workerBase + j)
		}
		go func(i int) {
			swg.Wait()
			close(resCh[i])
		}(i)
	}

	// Deliver stage, on the caller's goroutine, single sink goroutine
	// as always.
	var sinkErr error
	stopped := false
	deliver := func(it Item) {
		if stopped || ctx.Err() != nil {
			return
		}
		switch err := sink(it); {
		case err == nil:
			m.delivered.Add(1)
		case errors.Is(err, ErrStop):
			stopped = true
			cancel()
		default:
			m.errors.Add(1)
			sinkErr = fmt.Errorf("pipeline: sink: %w", err)
			stopped = true
			cancel()
		}
	}
	deliverBatch := func(ib *itemBatch) {
		var sinkStart time.Time
		if tel != nil {
			sinkStart = time.Now()
		}
		var snkSpan uint64
		var trSinkStart int64
		if rt != nil {
			trSinkStart = nowNS()
			snkSpan = rt.t.NewSpanID()
		}
		for i := range ib.items {
			if rt != nil && rt.sampled(ib.items[i].Index) {
				s := nowNS()
				deliver(ib.items[i])
				rt.emit(sinkRing, rt.sinkRec, rt.t.NewSpanID(), snkSpan,
					s, nowNS(), -1, ib.shard, int64(ib.items[i].Index), 1)
				continue
			}
			deliver(ib.items[i])
		}
		if tel != nil {
			tel.stageLat[stageSink].Observe(time.Since(sinkStart).Nanoseconds())
		}
		if rt != nil {
			rt.emit(sinkRing, rt.sink, snkSpan, ib.scanSpan,
				trSinkStart, nowNS(), -1, ib.shard, int64(ib.items[0].Index), int32(len(ib.items)))
		}
		putItems(ib)
	}
	if cfg.Ordered {
		// Segments are delivered in file order, each with ScanTDCAP's
		// reorder buffer; batch first-indexes are file-global, so the
		// concatenation is exactly the single-scanner ordered output.
		for i := 0; i < shards; i++ {
			next := src.Segment(i).FirstRecord
			pending := make(map[int]*itemBatch)
			for ib := range resCh[i] {
				pending[ib.items[0].Index] = ib
				for {
					nb, ok := pending[next]
					if !ok {
						break
					}
					delete(pending, next)
					next += len(nb.items)
					deliverBatch(nb)
				}
			}
			for _, nb := range pending {
				putItems(nb) // undelivered stragglers of a cancelled run
			}
		}
	} else {
		merged := make(chan *itemBatch, shards)
		var fwg sync.WaitGroup
		for i := 0; i < shards; i++ {
			fwg.Add(1)
			go func(c <-chan *itemBatch) {
				defer fwg.Done()
				for ib := range c {
					merged <- ib
				}
			}(resCh[i])
		}
		go func() {
			fwg.Wait()
			close(merged)
		}()
		for ib := range merged {
			deliverBatch(ib)
		}
	}

	// As in ScanTDCAP: don't hang on scanners blocked in reads when
	// the context was cancelled; per-shard errors are read only for
	// shards whose scan goroutine finished.
	var srcErr error
	for i := 0; i < shards; i++ {
		done := false
		select {
		case <-scanDone[i]:
			done = true
		case <-ctx.Done():
			select {
			case <-scanDone[i]:
				done = true
			default:
			}
		}
		if done && srcErr == nil && srcErrs[i] != nil {
			srcErr = fmt.Errorf("pipeline: source (segment %d): %w", i, srcErrs[i])
		}
	}
	if tel != nil {
		tel.queueDecos.Set(0)
		tel.queueRes.Set(0)
	}

	c := counts()
	switch {
	case sinkErr != nil:
		return c, sinkErr
	case srcErr != nil:
		return c, srcErr
	case ctx.Err() != nil && !stopped:
		return c, ctx.Err()
	}
	return c, nil
}
