package pipeline

import (
	"runtime"
	"sync/atomic"

	"tamperdetect/internal/core"
	"tamperdetect/internal/telemetry"
)

// Pipeline stage indexes for the per-stage latency histograms. The
// parallel scan path (Stream's default) times the raw-record scanner
// under "scan" and the per-worker decode under "decode", so /metrics
// separates boundary-finding cost from field-decoding cost; the
// sequential Run path attributes its whole source stage to "decode".
const (
	stageDecode = iota
	stageClassify
	stageObserve
	stageSink
	stageScan
	numStages
)

var stageNames = [numStages]string{"decode", "classify", "observe", "sink", "scan"}

// Disposition indexes for the per-outcome tallies.
const (
	dispNotTampering = iota
	dispTampering
	dispOtherAnomalous
	dispError
	numDispositions
)

var dispositionNames = [numDispositions]string{
	"not_tampering", "tampering", "other_anomalous", "error",
}

// Telemetry instruments pipeline runs into a telemetry.Registry:
//
//   - tamperdetect_pipeline_records_total{stage=...}: the live Metrics
//     counters (decoded/classified/tampering/delivered/errors).
//   - tamperdetect_pipeline_dropped_records: decoded-but-undelivered
//     records after the most recent finished run.
//   - tamperdetect_pipeline_stage_latency_ns{stage=...}: per-batch
//     latency histograms for the scan, decode, classify, observe, and
//     sink stages ("scan" is the parallel path's raw-record scanner;
//     "decode" is its per-worker field decode, or the whole source
//     stage on the sequential Run path). Observations are per batch
//     (Config.BatchSize records), not per record, which keeps the
//     classify hot path at two time.Now calls per batch.
//   - tamperdetect_pipeline_queue_depth_records{queue=...}: sampled
//     depth of the decode→classify and classify→sink channels, in
//     records — the backpressure view.
//   - tamperdetect_pipeline_signature_total{signature=...}: per-
//     signature classification counts in the paper's notation,
//     sharded per worker so the zero-allocation batch path stays
//     allocation-free.
//   - tamperdetect_pipeline_disposition_total{disposition=...}:
//     tampering / not_tampering / other_anomalous / error tallies,
//     sharded likewise.
//   - tamperdetect_capture_bytes_total / _records_total: capture-
//     reader throughput when the pipeline source exposes BytesRead
//     (ReaderSource does).
//
// One Telemetry may be shared by several sequential or concurrent
// runs; counters and histograms accumulate across them. Construction
// registers every series eagerly so a scrape before the first record
// still sees the full schema.
type Telemetry struct {
	reg *telemetry.Registry

	// metrics backs runs whose Config carries no Metrics of its own;
	// mp tracks the Metrics of the most recently started run, which
	// the records_total func instruments read at exposition time.
	metrics Metrics
	mp      atomic.Pointer[Metrics]

	stageLat   [numStages]*telemetry.Histogram
	queueDecos *telemetry.Gauge // decode→classify channel, in records
	queueRes   *telemetry.Gauge // classify→sink channel, in records
	sig        [core.NumSignatures]*telemetry.ShardedCounter
	disp       [numDispositions]*telemetry.ShardedCounter
	capBytes   *telemetry.Counter
}

// NewTelemetry registers the pipeline instrument set in reg (a nil
// reg gets a fresh private registry) and returns the handle to pass
// as Config.Telemetry.
func NewTelemetry(reg *telemetry.Registry) *Telemetry {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	t := &Telemetry{reg: reg}
	t.mp.Store(&t.metrics)

	load := func(f func(Counts) int64) func() int64 {
		return func() int64 { return f(t.mp.Load().Snapshot()) }
	}
	const rt = "tamperdetect_pipeline_records_total"
	const rtHelp = "Cumulative pipeline records by stage counter."
	reg.CounterFunc(rt, telemetry.Label("stage", "decoded"), rtHelp, load(func(c Counts) int64 { return c.Decoded }))
	reg.CounterFunc(rt, telemetry.Label("stage", "classified"), rtHelp, load(func(c Counts) int64 { return c.Classified }))
	reg.CounterFunc(rt, telemetry.Label("stage", "tampering"), rtHelp, load(func(c Counts) int64 { return c.Tampering }))
	reg.CounterFunc(rt, telemetry.Label("stage", "delivered"), rtHelp, load(func(c Counts) int64 { return c.Delivered }))
	reg.CounterFunc(rt, telemetry.Label("stage", "errors"), rtHelp, load(func(c Counts) int64 { return c.Errors }))
	reg.GaugeFunc("tamperdetect_pipeline_dropped_records", "",
		"Records decoded but never delivered in the most recent finished run.",
		load(func(c Counts) int64 { return c.Dropped }))

	for i, name := range stageNames {
		t.stageLat[i] = reg.Histogram("tamperdetect_pipeline_stage_latency_ns",
			telemetry.Label("stage", name),
			"Per-batch pipeline stage latency in nanoseconds (one observation per batch of Config.BatchSize records).")
	}
	t.queueDecos = reg.Gauge("tamperdetect_pipeline_queue_depth_records",
		telemetry.Label("queue", "decoded"),
		"Sampled inter-stage channel depth in records; a persistently full queue marks the backpressure bottleneck.")
	t.queueRes = reg.Gauge("tamperdetect_pipeline_queue_depth_records",
		telemetry.Label("queue", "results"),
		"Sampled inter-stage channel depth in records; a persistently full queue marks the backpressure bottleneck.")

	shards := runtime.GOMAXPROCS(0)
	for s := core.Signature(0); s < core.NumSignatures; s++ {
		t.sig[s] = reg.ShardedCounter("tamperdetect_pipeline_signature_total",
			telemetry.Label("signature", s.String()),
			"Classified records per Table 1 signature (paper notation).", shards)
	}
	for i, name := range dispositionNames {
		t.disp[i] = reg.ShardedCounter("tamperdetect_pipeline_disposition_total",
			telemetry.Label("disposition", name),
			"Classified records per disposition.", shards)
	}

	t.capBytes = reg.Counter("tamperdetect_capture_bytes_total", "",
		"Bytes consumed by the capture reader feeding the pipeline.")
	reg.CounterFunc("tamperdetect_capture_records_total", "",
		"Connection records decoded from the capture stream.",
		load(func(c Counts) int64 { return c.Decoded }))

	return t
}

// Registry returns the registry the instruments live in, for serving
// via telemetry.NewServer or adding caller-side series.
func (t *Telemetry) Registry() *telemetry.Registry { return t.reg }

// Metrics returns the Telemetry's own counter block — the one runs
// use when their Config has no explicit Metrics.
func (t *Telemetry) Metrics() *Metrics { return &t.metrics }

// attach points the records_total instruments at the Metrics the
// starting run will update.
func (t *Telemetry) attach(m *Metrics) { t.mp.Store(m) }

// observeSig records one classified item's signature and disposition
// on the worker's shard: exactly two uncontended atomic adds, no
// allocation — safe inside the zero-allocation classify loop.
func (t *Telemetry) observeSig(worker int, it Item) {
	if it.Err != nil {
		t.disp[dispError].Add(worker, 1)
		return
	}
	s := it.Res.Signature
	if s >= 0 && s < core.NumSignatures {
		t.sig[s].Add(worker, 1)
	}
	switch {
	case s == core.SigNotTampering:
		t.disp[dispNotTampering].Add(worker, 1)
	case s == core.SigOtherAnomalous:
		t.disp[dispOtherAnomalous].Add(worker, 1)
	case s.IsTampering():
		t.disp[dispTampering].Add(worker, 1)
	}
}

// byteCounter is implemented by sources that can report raw bytes
// consumed (ReaderSource via capture.Reader.BytesRead).
type byteCounter interface {
	BytesRead() int64
}
