package pipeline

import "sync/atomic"

// Metrics holds the pipeline's per-stage counters. All fields are
// updated atomically while a run is in flight, so a Metrics passed in
// via Config.Metrics can be observed live from another goroutine (a
// stats ticker, an HTTP handler) without racing the pipeline.
type Metrics struct {
	decoded    atomic.Int64
	classified atomic.Int64
	tampering  atomic.Int64
	delivered  atomic.Int64
	errors     atomic.Int64
	dropped    atomic.Int64
}

// Snapshot returns a consistent-enough point-in-time copy of the
// counters. During a run the individual values may be mid-update
// relative to each other; after Run returns they are exact.
func (m *Metrics) Snapshot() Counts {
	return Counts{
		Decoded:    m.decoded.Load(),
		Classified: m.classified.Load(),
		Tampering:  m.tampering.Load(),
		Delivered:  m.delivered.Load(),
		Errors:     m.errors.Load(),
		Dropped:    m.dropped.Load(),
	}
}

// Reset zeroes every counter, so one Metrics can span multiple runs
// either cumulatively (no Reset) or per-run.
func (m *Metrics) Reset() {
	m.decoded.Store(0)
	m.classified.Store(0)
	m.tampering.Store(0)
	m.delivered.Store(0)
	m.errors.Store(0)
	m.dropped.Store(0)
}

// Counts is a plain snapshot of the pipeline's per-stage counters.
type Counts struct {
	// Decoded counts records successfully produced by the source.
	Decoded int64
	// Classified counts records classified by the worker pool.
	Classified int64
	// Tampering counts classified records whose signature is one of
	// the 19 tampering signatures.
	Tampering int64
	// Delivered counts items the sink accepted.
	Delivered int64
	// Errors counts decode failures, sink failures (at most one of
	// each per run, since either stops the pipeline), and recovered
	// per-record classifier panics (one per poisoned record; the run
	// continues).
	Errors int64
	// Dropped counts records decoded but never delivered — nonzero
	// only when the run was cancelled or stopped early.
	Dropped int64
}
