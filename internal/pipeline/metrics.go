package pipeline

import (
	"sync/atomic"

	"tamperdetect/internal/wire"
)

// Metrics holds the pipeline's per-stage counters. All fields are
// updated atomically while a run is in flight, so a Metrics passed in
// via Config.Metrics can be observed live from another goroutine (a
// stats ticker, an HTTP handler) without racing the pipeline.
type Metrics struct {
	decoded    atomic.Int64
	classified atomic.Int64
	tampering  atomic.Int64
	delivered  atomic.Int64
	errors     atomic.Int64
	dropped    atomic.Int64
}

// Snapshot returns a consistent-enough point-in-time copy of the
// counters. During a run the individual values may be mid-update
// relative to each other; after Run returns they are exact.
func (m *Metrics) Snapshot() Counts {
	return Counts{
		Decoded:    m.decoded.Load(),
		Classified: m.classified.Load(),
		Tampering:  m.tampering.Load(),
		Delivered:  m.delivered.Load(),
		Errors:     m.errors.Load(),
		Dropped:    m.dropped.Load(),
	}
}

// Delta returns the counter movement since prev, a snapshot taken
// earlier from this same Metrics: Delta(prev) == Snapshot() - prev,
// field by field. It is the rate-friendly way to watch a shared
// Metrics — take a snapshot, wait, Delta — and works whether one run
// or several concurrent runs are feeding the counters. Note Dropped
// is recomputed (stored, not accumulated) at the end of each run, so
// its delta is only meaningful between snapshots that straddle whole
// runs; the five monotonic counters are always safe.
func (m *Metrics) Delta(prev Counts) Counts {
	cur := m.Snapshot()
	return Counts{
		Decoded:    cur.Decoded - prev.Decoded,
		Classified: cur.Classified - prev.Classified,
		Tampering:  cur.Tampering - prev.Tampering,
		Delivered:  cur.Delivered - prev.Delivered,
		Errors:     cur.Errors - prev.Errors,
		Dropped:    cur.Dropped - prev.Dropped,
	}
}

// Reset zeroes every counter, so one Metrics can span multiple runs
// either cumulatively (no Reset) or per-run.
//
// Cross-run semantics: a Metrics shared across sequential runs
// accumulates unless Reset is called between them; Reset while any
// run is in flight races with that run's updates and yields
// meaningless counts (nothing crashes — the fields are atomics — but
// per-stage invariants like delivered <= decoded no longer hold).
// To observe one run of many without Reset, snapshot at run start
// and use Delta.
func (m *Metrics) Reset() {
	m.decoded.Store(0)
	m.classified.Store(0)
	m.tampering.Store(0)
	m.delivered.Store(0)
	m.errors.Store(0)
	m.dropped.Store(0)
}

// Counts is a plain snapshot of the pipeline's per-stage counters.
type Counts struct {
	// Decoded counts records successfully produced by the source.
	Decoded int64
	// Classified counts records classified by the worker pool.
	Classified int64
	// Tampering counts classified records whose signature is one of
	// the 19 tampering signatures.
	Tampering int64
	// Delivered counts items the sink accepted.
	Delivered int64
	// Errors counts decode failures, sink failures (at most one of
	// each per run, since either stops the pipeline), and recovered
	// per-record classifier panics (one per poisoned record; the run
	// continues).
	Errors int64
	// Dropped counts records decoded but never delivered — nonzero
	// only when the run was cancelled or stopped early.
	Dropped int64
}

// Add returns the field-wise sum of two snapshots — the inverse of
// Delta, used by the fleet merger to accumulate pushed per-epoch
// deltas into global pipeline totals.
func (c Counts) Add(o Counts) Counts {
	return Counts{
		Decoded:    c.Decoded + o.Decoded,
		Classified: c.Classified + o.Classified,
		Tampering:  c.Tampering + o.Tampering,
		Delivered:  c.Delivered + o.Delivered,
		Errors:     c.Errors + o.Errors,
		Dropped:    c.Dropped + o.Dropped,
	}
}

// AppendWire appends the snapshot to b in the fleet wire format. A
// Counts is a value copy, so serializing one taken via Snapshot/Delta
// can never race the live atomics it was read from.
func (c Counts) AppendWire(b []byte) []byte {
	for _, v := range []int64{c.Decoded, c.Classified, c.Tampering, c.Delivered, c.Errors, c.Dropped} {
		b = wire.AppendVarint(b, v)
	}
	return b
}

// DecodeCounts reads one AppendWire frame from d.
func DecodeCounts(d *wire.Decoder) (Counts, error) {
	c := Counts{
		Decoded:    d.Varint(),
		Classified: d.Varint(),
		Tampering:  d.Varint(),
		Delivered:  d.Varint(),
		Errors:     d.Varint(),
		Dropped:    d.Varint(),
	}
	return c, d.Err()
}
