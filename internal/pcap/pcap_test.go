package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	pkts := [][]byte{
		{0x45, 0, 0, 20, 1, 2, 3, 4, 64, 6, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2},
		{0x60, 0, 0, 0, 0, 0, 6, 64},
	}
	times := []int64{1_500_000_000, 2_000_123_000}
	for i, p := range pkts {
		if err := w.Write(times[i], p); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Errorf("link type = %d", r.LinkType())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("packets = %d, want 2", len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i].Data, pkts[i]) {
			t.Errorf("packet %d data mismatch", i)
		}
		// Microsecond precision: nanoseconds are truncated to µs.
		if got[i].TimestampNanos/1e3 != times[i]/1e3 {
			t.Errorf("packet %d ts = %d, want ≈%d", i, got[i].TimestampNanos, times[i])
		}
		if got[i].OriginalLen != len(pkts[i]) {
			t.Errorf("packet %d origLen = %d", i, got[i].OriginalLen)
		}
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 8)
	data := make([]byte, 40)
	data[0] = 0x45
	if err := w.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 8 || p.OriginalLen != 40 {
		t.Errorf("cap/orig = %d/%d, want 8/40", len(p.Data), p.OriginalLen)
	}
}

// buildFile constructs a pcap file by hand for reader tests.
func buildFile(order binary.ByteOrder, magic uint32, linkType uint32, payloads ...[]byte) []byte {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	order.PutUint32(hdr[0:4], magic)
	order.PutUint16(hdr[4:6], 2)
	order.PutUint16(hdr[6:8], 4)
	order.PutUint32(hdr[16:20], 65535)
	order.PutUint32(hdr[20:24], linkType)
	buf.Write(hdr)
	for _, p := range payloads {
		ph := make([]byte, 16)
		order.PutUint32(ph[0:4], 42)
		order.PutUint32(ph[4:8], 7)
		order.PutUint32(ph[8:12], uint32(len(p)))
		order.PutUint32(ph[12:16], uint32(len(p)))
		buf.Write(ph)
		buf.Write(p)
	}
	return buf.Bytes()
}

func TestReaderBigEndian(t *testing.T) {
	file := buildFile(binary.BigEndian, magicMicros, LinkTypeRaw, []byte{0x45, 1, 2, 3})
	r, err := NewReader(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if p.TimestampNanos != 42*1e9+7*1e3 {
		t.Errorf("ts = %d", p.TimestampNanos)
	}
}

func TestReaderNanosecondMagic(t *testing.T) {
	file := buildFile(binary.LittleEndian, magicNanos, LinkTypeRaw, []byte{0x45})
	r, err := NewReader(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if p.TimestampNanos != 42*1e9+7 {
		t.Errorf("ts = %d, want nanosecond precision", p.TimestampNanos)
	}
}

func TestReaderEthernet(t *testing.T) {
	frame := append(make([]byte, 12), 0x08, 0x00) // dst+src MACs, EtherType IPv4
	frame = append(frame, 0x45, 0xAA, 0xBB)
	arp := append(make([]byte, 12), 0x08, 0x06) // EtherType ARP
	arp = append(arp, 1, 2, 3)
	vlan := append(make([]byte, 12), 0x81, 0x00, 0x00, 0x05, 0x86, 0xdd) // VLAN then IPv6
	vlan = append(vlan, 0x60, 0x01)
	file := buildFile(binary.LittleEndian, magicMicros, LinkTypeEthernet, frame, arp, vlan)
	r, err := NewReader(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// ARP skipped; IPv4 and VLAN-tagged IPv6 kept.
	if len(pkts) != 2 {
		t.Fatalf("packets = %d, want 2 (ARP skipped)", len(pkts))
	}
	if pkts[0].Data[0] != 0x45 {
		t.Errorf("first payload = % x", pkts[0].Data)
	}
	if pkts[1].Data[0] != 0x60 {
		t.Errorf("vlan payload = % x", pkts[1].Data)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("this is not a pcap file!"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
}

func TestReaderUnsupportedLink(t *testing.T) {
	file := buildFile(binary.LittleEndian, magicMicros, 147 /* USER0 */, []byte{1})
	if _, err := NewReader(bytes.NewReader(file)); err == nil {
		t.Error("unsupported link type accepted")
	}
}

func TestReaderTruncatedPacket(t *testing.T) {
	file := buildFile(binary.LittleEndian, magicMicros, LinkTypeRaw, []byte{0x45, 1, 2, 3})
	r, err := NewReader(bytes.NewReader(file[:len(file)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("truncated packet: err = %v, want ErrTruncated", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(ts int64, payload []byte) bool {
		if ts < 0 {
			ts = -ts
		}
		ts %= 4e18
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, 0)
		if err := w.Write(ts, payload); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		p, err := r.Read()
		if err != nil {
			return false
		}
		return bytes.Equal(p.Data, payload) && p.TimestampNanos/1e3 == ts/1e3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
