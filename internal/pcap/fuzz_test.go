package pcap

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the pcap reader; it must never
// panic or over-allocate, and every returned packet must respect the
// declared lengths.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	_ = w.Write(1e9, []byte{0x45, 1, 2, 3})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("random noise, definitely not a pcap file header......"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			p, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(p.Data) > len(data) {
				t.Fatalf("packet larger than the file")
			}
		}
	})
}
