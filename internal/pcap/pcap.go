// Package pcap reads and writes classic libpcap capture files
// (https://wiki.wireshark.org/Development/LibpcapFileFormat) with the
// standard library only. It supports the two link types relevant to
// tampering analysis — LINKTYPE_RAW (bare IP, what our simulator
// produces) and LINKTYPE_ETHERNET (what most real taps produce; the
// 14-byte frame header is stripped on read) — in both byte orders and
// both microsecond and nanosecond timestamp precisions.
//
// This is the bridge between the paper's pipeline and real packet
// captures: cmd/tamperscan ingests .pcap files via this package, and
// cmd/trafficgen can emit them for inspection in Wireshark.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Link types (from the tcpdump LINKTYPE registry).
const (
	LinkTypeEthernet uint32 = 1
	LinkTypeRaw      uint32 = 101
	// LinkTypeLoop is OpenBSD loopback: a 4-byte family header.
	LinkTypeLoop uint32 = 0
)

// Magic numbers.
const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d
)

// Errors.
var (
	ErrBadMagic        = errors.New("pcap: not a pcap file")
	ErrUnsupportedLink = errors.New("pcap: unsupported link type")
	ErrTruncated       = errors.New("pcap: truncated file")
)

// Packet is one captured packet.
type Packet struct {
	// TimestampNanos is the capture time in nanoseconds since the
	// epoch of the capture (pcap stores seconds + sub-seconds).
	TimestampNanos int64
	// Data is the packet bytes starting at the IP header (link-layer
	// headers are stripped).
	Data []byte
	// OriginalLen is the untruncated packet length on the wire.
	OriginalLen int
}

// Reader streams packets from a pcap file.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nanos    bool
	linkType uint32
	snapLen  uint32
}

// NewReader parses the global header and prepares to stream packets.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	pr := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(hdr[0:4])
	magicBE := binary.BigEndian.Uint32(hdr[0:4])
	switch {
	case magicLE == magicMicros:
		pr.order = binary.LittleEndian
	case magicBE == magicMicros:
		pr.order = binary.BigEndian
	case magicLE == magicNanos:
		pr.order, pr.nanos = binary.LittleEndian, true
	case magicBE == magicNanos:
		pr.order, pr.nanos = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	pr.snapLen = pr.order.Uint32(hdr[16:20])
	pr.linkType = pr.order.Uint32(hdr[20:24])
	switch pr.linkType {
	case LinkTypeRaw, LinkTypeEthernet, LinkTypeLoop:
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedLink, pr.linkType)
	}
	return pr, nil
}

// LinkType reports the file's link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// SnapLen reports the file's snapshot length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Read returns the next packet, or io.EOF at the end. Packets whose
// link-layer payload is not IPv4/IPv6 (e.g. ARP frames) are returned
// with empty Data; callers skip them.
func (r *Reader) Read() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	sec := int64(r.order.Uint32(hdr[0:4]))
	sub := int64(r.order.Uint32(hdr[4:8]))
	capLen := r.order.Uint32(hdr[8:12])
	origLen := r.order.Uint32(hdr[12:16])
	if capLen > 256*1024 {
		return Packet{}, fmt.Errorf("%w: implausible capture length %d", ErrTruncated, capLen)
	}
	buf := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return Packet{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	pkt := Packet{OriginalLen: int(origLen)}
	if r.nanos {
		pkt.TimestampNanos = sec*1e9 + sub
	} else {
		pkt.TimestampNanos = sec*1e9 + sub*1e3
	}
	pkt.Data = stripLink(r.linkType, buf)
	return pkt, nil
}

// stripLink removes the link-layer header, returning nil for non-IP
// payloads.
func stripLink(linkType uint32, data []byte) []byte {
	switch linkType {
	case LinkTypeRaw:
		return data
	case LinkTypeLoop:
		if len(data) < 4 {
			return nil
		}
		return data[4:]
	case LinkTypeEthernet:
		if len(data) < 14 {
			return nil
		}
		etherType := binary.BigEndian.Uint16(data[12:14])
		payload := data[14:]
		// 802.1Q VLAN tag: skip 4 more bytes.
		if etherType == 0x8100 && len(payload) >= 4 {
			etherType = binary.BigEndian.Uint16(payload[2:4])
			payload = payload[4:]
		}
		switch etherType {
		case 0x0800, 0x86dd: // IPv4, IPv6
			return payload
		default:
			return nil
		}
	default:
		return nil
	}
}

// ReadAll drains the reader, skipping non-IP packets.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if len(p.Data) == 0 {
			continue
		}
		out = append(out, p)
	}
}

// Writer streams packets into a pcap file with LINKTYPE_RAW and
// microsecond timestamps — readable by tcpdump and Wireshark.
type Writer struct {
	w       *bufio.Writer
	began   bool
	snapLen uint32
}

// NewWriter wraps w. snapLen 0 defaults to 65535.
func NewWriter(w io.Writer, snapLen uint32) *Writer {
	if snapLen == 0 {
		snapLen = 65535
	}
	return &Writer{w: bufio.NewWriter(w), snapLen: snapLen}
}

func (w *Writer) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version 2.4
	binary.LittleEndian.PutUint16(hdr[6:8], 4)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeRaw)
	_, err := w.w.Write(hdr[:])
	return err
}

// Write appends one raw IP packet with the given timestamp.
func (w *Writer) Write(tsNanos int64, data []byte) error {
	if !w.began {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.began = true
	}
	capLen := uint32(len(data))
	if capLen > w.snapLen {
		capLen = w.snapLen
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(tsNanos/1e9))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(tsNanos%1e9/1e3))
	binary.LittleEndian.PutUint32(hdr[8:12], capLen)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data[:capLen])
	return err
}

// Flush commits buffered data; an empty capture still gets a header.
func (w *Writer) Flush() error {
	if !w.began {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.began = true
	}
	return w.w.Flush()
}
