package tcpsim

import (
	"bytes"
	"math/rand/v2"
	"net/netip"
	"strings"
	"testing"
	"time"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
)

// harness wires a client and server over a plain two-segment path and
// records the inbound packets at the server tap.
type harness struct {
	sim    *netsim.Sim
	client *Client
	server *Server
	path   *netsim.Path
	seen   []packet.Summary
	times  []netsim.Time
}

func clientProfile() NetProfile {
	return NetProfile{
		LocalIP:    netip.MustParseAddr("203.0.113.10"),
		RemoteIP:   netip.MustParseAddr("192.0.2.80"),
		LocalPort:  40000,
		RemotePort: 443,
		InitialTTL: 64,
		IPID:       IPIDCounter,
		IPIDValue:  7000,
		Window:     64240,
		SYNOptions: true,
	}
}

func serverProfile() NetProfile {
	return NetProfile{
		LocalIP:    netip.MustParseAddr("192.0.2.80"),
		RemoteIP:   netip.MustParseAddr("203.0.113.10"),
		LocalPort:  443,
		RemotePort: 40000,
		InitialTTL: 64,
		IPID:       IPIDCounter,
		IPIDValue:  20000,
		Window:     65535,
		SYNOptions: true,
	}
}

func newHarness(t *testing.T, ccfg ClientConfig, mbs ...netsim.Middlebox) *harness {
	t.Helper()
	h := &harness{sim: netsim.NewSim(0)}
	rng := rand.New(rand.NewPCG(1, 2))
	h.client = NewClient(h.sim, ccfg, rng)
	h.server = NewServer(h.sim, ServerConfig{Net: serverProfile()}, rng)
	segs := make([]netsim.Segment, len(mbs)+1)
	for i := range segs {
		segs[i] = netsim.Segment{Delay: 20 * time.Millisecond, Hops: 5}
	}
	h.path = netsim.NewPath(h.sim, netsim.PathConfig{Segments: segs, Middleboxes: mbs}, h.client, h.server)
	parser := packet.NewSummaryParser()
	h.path.Tap = func(at netsim.Time, data []byte) {
		var s packet.Summary
		if err := parser.Parse(data, &s); err != nil {
			t.Fatalf("tap parse: %v", err)
		}
		h.seen = append(h.seen, s)
		h.times = append(h.times, at)
	}
	h.client.Attach(h.path.SendFromClient)
	h.server.Attach(h.path.SendFromServer)
	return h
}

func (h *harness) run() {
	h.client.Start()
	h.sim.Run(100000)
}

func (h *harness) flagSeq() string {
	var parts []string
	for _, s := range h.seen {
		parts = append(parts, s.Flags.String())
	}
	return strings.Join(parts, " ")
}

func TestNormalConnection(t *testing.T) {
	req := []byte("GET / HTTP/1.1\r\nHost: ok.example\r\n\r\n")
	h := newHarness(t, ClientConfig{
		Net:      clientProfile(),
		Segments: []Segment{{Data: req}},
	})
	h.run()

	got := h.flagSeq()
	// SYN, handshake ACK, request, ACK(s) of response, FIN+ACK, final ACK.
	if !strings.HasPrefix(got, "SYN ACK PSH+ACK") {
		t.Fatalf("inbound sequence = %q", got)
	}
	if !strings.Contains(got, "FIN+ACK") {
		t.Errorf("no graceful close seen: %q", got)
	}
	if !bytes.Equal(h.server.RequestData, req) {
		t.Errorf("server got %q, want %q", h.server.RequestData, req)
	}
	if !h.client.Done || h.client.Reason != "closed-by-peer" {
		t.Errorf("client done=%v reason=%q", h.client.Done, h.client.Reason)
	}
	// No RSTs anywhere in a clean connection.
	for _, s := range h.seen {
		if s.Flags.IsRST() {
			t.Errorf("unexpected RST in clean connection: %v", got)
		}
	}
}

func TestSequenceNumbersCoherent(t *testing.T) {
	req := []byte("0123456789")
	h := newHarness(t, ClientConfig{Net: clientProfile(), Segments: []Segment{{Data: req}}})
	h.run()

	syn := h.seen[0]
	ack := h.seen[1]
	psh := h.seen[2]
	if ack.Seq != syn.Seq+1 {
		t.Errorf("handshake ACK seq = %d, want ISN+1 = %d", ack.Seq, syn.Seq+1)
	}
	if psh.Seq != syn.Seq+1 {
		t.Errorf("first data seq = %d, want ISN+1 = %d", psh.Seq, syn.Seq+1)
	}
	// Later client packets ack into server space monotonically.
	var last uint32
	for _, s := range h.seen[1:] {
		if s.Flags.Has(packet.FlagACK) {
			if last != 0 && int32(s.Ack-last) < 0 {
				t.Errorf("client acks went backwards: %d then %d", last, s.Ack)
			}
			last = s.Ack
		}
	}
}

func TestClientIPIDCounter(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Segments: []Segment{{Data: []byte("x")}}})
	h.run()
	for i := 1; i < len(h.seen); i++ {
		d := int(h.seen[i].IPID) - int(h.seen[i-1].IPID)
		if d != 1 {
			t.Errorf("IP-ID delta between consecutive client packets = %d, want 1", d)
		}
	}
}

func TestClientIPIDZero(t *testing.T) {
	prof := clientProfile()
	prof.IPID = IPIDZero
	h := newHarness(t, ClientConfig{Net: prof, Segments: []Segment{{Data: []byte("x")}}})
	h.run()
	for _, s := range h.seen {
		if s.IPID != 0 {
			t.Errorf("IP-ID = %d, want 0", s.IPID)
		}
	}
}

func TestClientTTLDecremented(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Segments: []Segment{{Data: []byte("x")}}})
	h.run()
	// The middlebox-free harness path has one 5-hop segment.
	for _, s := range h.seen {
		if s.TTL != 64-5 {
			t.Errorf("TTL at server = %d, want 59", s.TTL)
		}
	}
}

func TestScannerBehavior(t *testing.T) {
	prof := clientProfile()
	prof.IPID = IPIDFixed
	prof.IPIDValue = 54321
	prof.SYNOptions = false
	h := newHarness(t, ClientConfig{Net: prof, Behavior: BehaviorScanner})
	h.run()
	if got := h.flagSeq(); got != "SYN RST" {
		t.Errorf("scanner sequence = %q, want SYN RST", got)
	}
	if h.seen[0].IPID != 54321 {
		t.Errorf("scanner SYN IP-ID = %d, want 54321", h.seen[0].IPID)
	}
	if h.seen[0].HasOptions {
		t.Error("scanner SYN has TCP options")
	}
}

func TestHappyEyeballsReset(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Behavior: BehaviorHappyEyeballsReset})
	h.run()
	if got := h.flagSeq(); got != "SYN RST" {
		t.Errorf("sequence = %q, want SYN RST", got)
	}
}

func TestHappyEyeballsDrop(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Behavior: BehaviorHappyEyeballsDrop})
	h.run()
	if got := h.flagSeq(); got != "SYN" {
		t.Errorf("sequence = %q, want bare SYN", got)
	}
}

func TestStallAfterHandshake(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Behavior: BehaviorStallHandshake})
	h.run()
	if got := h.flagSeq(); got != "SYN ACK" {
		t.Errorf("sequence = %q, want SYN ACK", got)
	}
}

func TestRedundantACK(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Behavior: BehaviorRedundantACK})
	h.run()
	if got := h.flagSeq(); got != "SYN ACK ACK" {
		t.Errorf("sequence = %q, want SYN ACK ACK", got)
	}
}

func TestDoubleSYN(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Behavior: BehaviorDoubleSYN,
		Segments: []Segment{{Data: []byte("q")}}})
	h.run()
	if got := h.flagSeq(); !strings.HasPrefix(got, "SYN SYN") {
		t.Errorf("sequence = %q, want SYN SYN prefix", got)
	}
	if !h.client.Done {
		t.Error("double-SYN client never finished")
	}
}

func TestSYNPayload(t *testing.T) {
	req := []byte("GET /fast HTTP/1.1\r\nHost: syn.example\r\n\r\n")
	h := newHarness(t, ClientConfig{Net: clientProfile(), SYNPayload: req,
		Segments: nil})
	h.run()
	if h.seen[0].PayloadLen != len(req) {
		t.Errorf("SYN payload len = %d, want %d", h.seen[0].PayloadLen, len(req))
	}
	if !bytes.Equal(h.server.RequestData, req) {
		t.Errorf("server request data = %q", h.server.RequestData)
	}
}

func TestKeepAliveSecondRequest(t *testing.T) {
	h := newHarness(t, ClientConfig{
		Net: clientProfile(),
		Segments: []Segment{
			{Data: []byte("GET /a HTTP/1.1\r\nHost: h\r\n\r\n")},
			{Data: []byte("GET /b HTTP/1.1\r\nHost: h\r\n\r\n"), AfterResponse: true},
		},
	})
	h.run()
	var pshCount int
	for _, s := range h.seen {
		if s.Flags.Has(packet.FlagPSH) {
			pshCount++
		}
	}
	if pshCount != 2 {
		t.Errorf("PSH count = %d, want 2: %q", pshCount, h.flagSeq())
	}
	if want := "GET /a"; !strings.Contains(string(h.server.RequestData), want) {
		t.Errorf("missing first request")
	}
	if want := "GET /b"; !strings.Contains(string(h.server.RequestData), want) {
		t.Errorf("missing second request")
	}
}

// synDropMB drops every client->server packet after the first SYN, and
// everything server->client: the in-path IP-blocking censor that
// produces ⟨SYN → ∅⟩.
type synDropMB struct{ sawSYN bool }

func (m *synDropMB) Process(dir netsim.Direction, data []byte, inject func(netsim.Direction, []byte)) bool {
	if !m.sawSYN {
		if dir == netsim.ClientToServer {
			m.sawSYN = true
		}
		return true
	}
	return false
}

func TestSYNTimeoutProducesSingleSYN(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Segments: []Segment{{Data: []byte("x")}}},
		&synDropMB{})
	h.run()
	if got := h.flagSeq(); got != "SYN" {
		t.Errorf("sequence = %q, want single SYN (retransmissions dropped)", got)
	}
	if !h.client.Done || h.client.Reason != "syn-timeout" {
		t.Errorf("client reason = %q, want syn-timeout", h.client.Reason)
	}
}

// dataDropMB silently drops client data packets (and the server's
// responses stay unaffected): the Iran-style ClientHello drop producing
// ⟨SYN;ACK → ∅⟩.
type dataDropMB struct{}

func (dataDropMB) Process(dir netsim.Direction, data []byte, inject func(netsim.Direction, []byte)) bool {
	if dir != netsim.ClientToServer {
		return true
	}
	var ip packet.IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		return true
	}
	var tcp packet.TCP
	if err := tcp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		return true
	}
	return len(tcp.LayerPayload()) == 0
}

func TestDataDropProducesHandshakeOnly(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Segments: []Segment{{Data: []byte("\x16\x03\x01hello")}}},
		dataDropMB{})
	h.run()
	if got := h.flagSeq(); got != "SYN ACK" {
		t.Errorf("sequence = %q, want SYN ACK (all data dropped)", got)
	}
	if h.client.Reason != "data-timeout" {
		t.Errorf("client reason = %q, want data-timeout", h.client.Reason)
	}
}

func TestClientAbortsOnRST(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Segments: []Segment{{Data: []byte("x")}}})
	// Deliver a forged RST straight to the client mid-handshake.
	h.client.Attach(h.path.SendFromClient)
	h.client.Start()
	h.sim.Run(2) // SYN sent, SYN+ACK on its way
	rst := NewServer(h.sim, ServerConfig{Net: serverProfile()}, rand.New(rand.NewPCG(3, 4)))
	_ = rst
	// Build a RST as if from the server.
	w := newWire(serverProfile())
	h.client.Recv(w.build(packet.FlagsRST, 1, 0, nil, false))
	if !h.client.Done || h.client.Reason != "rst" {
		t.Errorf("client done=%v reason=%q, want rst", h.client.Done, h.client.Reason)
	}
}

func TestServerRespondsRSTAfterAbort(t *testing.T) {
	sim := netsim.NewSim(0)
	rng := rand.New(rand.NewPCG(9, 9))
	srv := NewServer(sim, ServerConfig{Net: serverProfile()}, rng)
	var out [][]byte
	srv.Attach(func(d []byte) { out = append(out, d) })

	cw := newWire(clientProfile())
	srv.Recv(cw.build(packet.FlagsSYN, 1000, 0, nil, true))
	sim.Run(0)
	if len(out) == 0 {
		t.Fatal("no SYN+ACK")
	}
	// Forge an inbound RST (as a middlebox would, spoofing the client).
	srv.Recv(cw.build(packet.FlagsRST, 1001, 0, nil, false))
	if !srv.Aborted {
		t.Fatal("server did not abort on RST")
	}
	// A late client ACK now draws a RST.
	n := len(out)
	srv.Recv(cw.build(packet.FlagsACK, 1001, 4242, nil, false))
	if len(out) != n+1 {
		t.Fatal("no response to half-open segment")
	}
	var ip packet.IPv4
	if err := ip.DecodeFromBytes(out[n]); err != nil {
		t.Fatal(err)
	}
	var tcp packet.TCP
	if err := tcp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if !tcp.Flags.IsRST() {
		t.Errorf("reply flags = %v, want RST", tcp.Flags)
	}
	if tcp.Seq != 4242 {
		t.Errorf("RST seq = %d, want incoming ack 4242", tcp.Seq)
	}
}

func TestIPv6Connection(t *testing.T) {
	cprof := NetProfile{
		LocalIP:    netip.MustParseAddr("2001:db8:1::10"),
		RemoteIP:   netip.MustParseAddr("2001:db8:2::80"),
		LocalPort:  40001,
		RemotePort: 443,
		InitialTTL: 64,
		Window:     64240,
		SYNOptions: true,
	}
	sprof := NetProfile{
		LocalIP:    cprof.RemoteIP,
		RemoteIP:   cprof.LocalIP,
		LocalPort:  443,
		RemotePort: 40001,
		InitialTTL: 64,
		Window:     65535,
		SYNOptions: true,
	}
	sim := netsim.NewSim(0)
	rng := rand.New(rand.NewPCG(5, 6))
	cli := NewClient(sim, ClientConfig{Net: cprof, Segments: []Segment{{Data: []byte("v6 req")}}}, rng)
	srv := NewServer(sim, ServerConfig{Net: sprof}, rng)
	var seen []packet.Summary
	parser := packet.NewSummaryParser()
	path := netsim.NewPath(sim, netsim.PathConfig{Segments: []netsim.Segment{{Delay: time.Millisecond, Hops: 8}}}, cli, srv)
	path.Tap = func(at netsim.Time, data []byte) {
		var s packet.Summary
		if err := parser.Parse(data, &s); err != nil {
			t.Fatalf("parse: %v", err)
		}
		seen = append(seen, s)
	}
	cli.Attach(path.SendFromClient)
	srv.Attach(path.SendFromServer)
	cli.Start()
	sim.Run(0)
	if len(seen) < 3 {
		t.Fatalf("only %d inbound packets", len(seen))
	}
	if seen[0].IPVersion != 6 || seen[0].TTL != 56 {
		t.Errorf("v6 SYN version/ttl = %d/%d, want 6/56", seen[0].IPVersion, seen[0].TTL)
	}
	if string(srv.RequestData) != "v6 req" {
		t.Errorf("request = %q", srv.RequestData)
	}
}

func TestNetProfileIsV6(t *testing.T) {
	p := NetProfile{LocalIP: netip.MustParseAddr("::ffff:10.0.0.1")}
	if p.IsV6() {
		t.Error("4-in-6 mapped address reported as v6")
	}
	p.LocalIP = netip.MustParseAddr("2001:db8::1")
	if !p.IsV6() {
		t.Error("v6 address not reported as v6")
	}
}

// testRNG returns a fixed-seed RNG for deterministic tests.
func testRNG() *rand.Rand { return rand.New(rand.NewPCG(77, 78)) }
