package tcpsim

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"

	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/faults"
	"tamperdetect/internal/netsim"
)

// These tests run fixed-seed connections through benign link
// impairments (duplication, reordering, burst loss) and assert the two
// robustness properties the fault layer exists to prove: the endpoints
// still complete the exchange, and the captured flag sequence never
// classifies as a tampering signature.

// impairedHarness wires a client and server over a two-segment path
// with an impairment chain installed, and taps inbound packets into a
// capture sampler so the result can be classified.
type impairedHarness struct {
	sim     *netsim.Sim
	client  *Client
	server  *Server
	sampler *capture.Sampler
}

func newImpairedHarness(ccfg ClientConfig, imp faults.Config, seed uint64) *impairedHarness {
	h := &impairedHarness{sim: netsim.NewSim(0)}
	rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
	h.client = NewClient(h.sim, ccfg, rng)
	h.server = NewServer(h.sim, ServerConfig{Net: serverProfile()}, rng)
	segs := []netsim.Segment{
		{Delay: 20 * time.Millisecond, Hops: 5},
	}
	chain := faults.NewChain(imp, rand.New(rand.NewPCG(seed^0xfa, seed)))
	path := netsim.NewPath(h.sim, netsim.PathConfig{Segments: segs, Hook: chain.Hook}, h.client, h.server)
	capCfg := capture.DefaultConfig()
	capCfg.VerifyChecksums = true
	h.sampler = capture.NewSampler(capCfg)
	path.Tap = h.sampler.Inbound
	h.client.Attach(path.SendFromClient)
	h.server.Attach(path.SendFromServer)
	return h
}

func (h *impairedHarness) run() *capture.Connection {
	h.client.Start()
	h.sim.Run(200000)
	conns := h.sampler.Drain(h.sim.Now().Add(45 * time.Second))
	if len(conns) == 0 {
		return nil
	}
	return conns[0]
}

// runImpaired simulates one request/response connection under imp with
// the given seed and asserts completion plus a non-tampering verdict.
func runImpaired(t *testing.T, imp faults.Config, seed uint64, extraRetries, wantExactClose bool) {
	t.Helper()
	req := []byte("GET / HTTP/1.1\r\nHost: ok.example\r\n\r\n")
	ccfg := ClientConfig{
		Net:      clientProfile(),
		Segments: []Segment{{Data: req}},
	}
	if extraRetries {
		ccfg.SYNRetries = 6
		ccfg.DataRetries = 5
	}
	h := newImpairedHarness(ccfg, imp, seed)
	conn := h.run()

	if !h.client.Done {
		t.Fatalf("seed %d: client never finished", seed)
	}
	if wantExactClose {
		// Without loss every packet arrives, so the exchange must end in
		// a graceful peer close with the request intact.
		if h.client.Reason != "closed-by-peer" {
			t.Errorf("seed %d: client finished with %q, want closed-by-peer", seed, h.client.Reason)
		}
		if !bytes.Equal(h.server.RequestData, req) {
			t.Errorf("seed %d: server got %q, want %q", seed, h.server.RequestData, req)
		}
	}
	if conn == nil {
		if !wantExactClose {
			return // every inbound copy lost: nothing captured, nothing flagged
		}
		t.Fatalf("seed %d: no capture record", seed)
	}
	res := core.NewClassifier(core.DefaultConfig()).Classify(conn)
	if res.Signature.IsTampering() {
		t.Errorf("seed %d: benign impaired connection classified %q", seed, res.Signature)
	}
}

func TestImpairedDuplicationCompletes(t *testing.T) {
	imp := faults.Config{Grade: "dup-test", DupProb: 0.4, DupDelay: 500 * time.Microsecond}
	for seed := uint64(1); seed <= 25; seed++ {
		runImpaired(t, imp, seed, false, true)
	}
}

func TestImpairedReorderingCompletes(t *testing.T) {
	imp := faults.Config{
		Grade:       "reorder-test",
		ReorderProb: 0.5, ReorderDelay: 30 * time.Millisecond,
		JitterMax: 2 * time.Millisecond,
	}
	for seed := uint64(1); seed <= 25; seed++ {
		runImpaired(t, imp, seed, false, true)
	}
}

func TestImpairedDupAndReorderCompletes(t *testing.T) {
	imp := faults.Config{
		Grade:   "dup-reorder-test",
		DupProb: 0.3, DupDelay: 500 * time.Microsecond,
		ReorderProb: 0.3, ReorderDelay: 25 * time.Millisecond,
	}
	for seed := uint64(1); seed <= 25; seed++ {
		runImpaired(t, imp, seed, false, true)
	}
}

func TestImpairedBurstLossNeverFlagsTampering(t *testing.T) {
	imp, err := faults.Grade("lossy")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 50; seed++ {
		runImpaired(t, imp, seed, true, false)
	}
}
