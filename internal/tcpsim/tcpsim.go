// Package tcpsim implements simplified but wire-faithful TCP endpoint
// state machines: a client that opens connections, sends requests, and
// closes gracefully, and a server that accepts, acknowledges, and
// responds. Both endpoints emit and consume real serialized IPv4/IPv6 +
// TCP packets via internal/packet, so everything between them — DPI
// middleboxes, the capture tap, the classifier — sees genuine wire
// bytes with coherent sequence numbers, IP-IDs, and TTLs.
//
// The state machines implement the subset of TCP that determines
// tampering signatures: the three-way handshake, data transfer with
// cumulative ACKs, graceful FIN teardown, RST handling and generation,
// and retransmission with exponential backoff. Congestion control,
// SACK, and window management are deliberately out of scope; no
// signature in the paper depends on them.
package tcpsim

import (
	"math/rand/v2"
	"net/netip"

	"tamperdetect/internal/packet"
)

// IPIDStrategy selects how an endpoint fills the IPv4 identification
// field — the behaviours observed in the wild (paper §4.3): zero,
// per-connection counter, or a fixed value (ZMap uses 54321).
type IPIDStrategy int

// IP-ID strategies.
const (
	IPIDCounter IPIDStrategy = iota
	IPIDZero
	IPIDFixed
)

// NetProfile describes one endpoint's network identity and header
// conventions.
type NetProfile struct {
	LocalIP    netip.Addr
	RemoteIP   netip.Addr
	LocalPort  uint16
	RemotePort uint16
	// InitialTTL is the TTL/hop-limit the endpoint stamps on packets
	// (64 and 128 are the common OS defaults, §4.3).
	InitialTTL uint8
	IPID       IPIDStrategy
	// IPIDValue seeds the counter or holds the fixed value.
	IPIDValue uint16
	Window    uint16
	// SYNOptions emits the conventional MSS/SACK/WS options on the SYN
	// (absence of options is a scanner fingerprint, §4.2).
	SYNOptions bool
}

// IsV6 reports whether the endpoint speaks IPv6.
func (n *NetProfile) IsV6() bool { return n.LocalIP.Is6() && !n.LocalIP.Is4In6() }

// wire builds serialized packets for one endpoint of a connection.
// Serialization goes through the packet package's pooled buffers, so
// the steady-state per-packet cost is one exact-size allocation (the
// bytes handed to the path) and nothing else.
type wire struct {
	prof   NetProfile
	ipid   uint16
	ip4    packet.IPv4
	ip6    packet.IPv6
	tcp    packet.TCP
	serial packet.SerializeOptions
}

func newWire(prof NetProfile) *wire {
	w := &wire{
		prof:   prof,
		serial: packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
	}
	w.ipid = prof.IPIDValue
	return w
}

func (w *wire) nextIPID() uint16 {
	switch w.prof.IPID {
	case IPIDZero:
		return 0
	case IPIDFixed:
		return w.prof.IPIDValue
	default:
		id := w.ipid
		w.ipid++
		return id
	}
}

// synOptions are the standard client SYN options: MSS 1460, SACK
// permitted, window scale 7.
var synOptions = []packet.TCPOption{
	{Kind: packet.TCPOptionMSS, Data: []byte{0x05, 0xb4}},
	{Kind: packet.TCPOptionSACKOK},
	{Kind: packet.TCPOptionNOP},
	{Kind: packet.TCPOptionWindowScale, Data: []byte{7}},
}

// build serializes one segment from this endpoint with the given TCP
// fields and payload. The result is a fresh slice safe to hand to the
// path.
func (w *wire) build(flags packet.TCPFlags, seq, ack uint32, payload []byte, withOpts bool) []byte {
	w.tcp = packet.TCP{
		SrcPort: w.prof.LocalPort,
		DstPort: w.prof.RemotePort,
		Seq:     seq,
		Ack:     ack,
		Flags:   flags,
		Window:  w.prof.Window,
	}
	if withOpts && w.prof.SYNOptions {
		w.tcp.Options = synOptions
	}
	var out []byte
	var err error
	if w.prof.IsV6() {
		w.ip6 = packet.IPv6{
			NextHeader: 6,
			HopLimit:   w.prof.InitialTTL,
			SrcIP:      w.prof.LocalIP,
			DstIP:      w.prof.RemoteIP,
		}
		w.tcp.SetNetworkLayerForChecksum(&w.ip6)
		out, err = packet.AppendLayers(nil, w.serial, &w.ip6, &w.tcp, packet.Payload(payload))
	} else {
		w.ip4 = packet.IPv4{
			TTL:      w.prof.InitialTTL,
			ID:       w.nextIPID(),
			Flags:    packet.IPv4DontFragment,
			Protocol: 6,
			SrcIP:    w.prof.LocalIP,
			DstIP:    w.prof.RemoteIP,
		}
		w.tcp.SetNetworkLayerForChecksum(&w.ip4)
		out, err = packet.AppendLayers(nil, w.serial, &w.ip4, &w.tcp, packet.Payload(payload))
	}
	if err != nil {
		// The layers are fully under our control; a serialize error is
		// a programming bug.
		panic("tcpsim: serialize failed: " + err.Error())
	}
	return out
}

// randISN draws a random initial sequence number away from wraparound.
func randISN(rng *rand.Rand) uint32 {
	return rng.Uint32()%0xf0000000 + 0x1000
}

// decodeFor parses raw bytes, filtering to this endpoint's ports.
// Packets with broken IP/TCP checksums are discarded first, as a real
// NIC/kernel would — in-flight corruption degenerates to loss.
func decodeFor(parser *packet.SummaryParser, prof *NetProfile, data []byte) (packet.Summary, bool) {
	var s packet.Summary
	if !packet.ChecksumsValid(data) {
		return s, false
	}
	if err := parser.Parse(data, &s); err != nil {
		return s, false
	}
	if s.DstPort != prof.LocalPort || s.SrcPort != prof.RemotePort {
		return s, false
	}
	return s, true
}
