package tcpsim

import (
	"math/rand/v2"
	"time"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
)

// ServerConfig configures the simulated CDN edge endpoint for one
// connection.
type ServerConfig struct {
	Net NetProfile
	// ResponseSegments and ResponseSegmentSize shape the reply sent
	// after each request data packet that looks complete.
	ResponseSegments    int
	ResponseSegmentSize int
	// ResponseDelay models server think time.
	ResponseDelay time.Duration
	// RTO is the base retransmission timeout for the SYN+ACK and for
	// unacknowledged response data.
	RTO time.Duration
	// SYNACKRetries bounds SYN+ACK retransmission.
	SYNACKRetries int
	// ResponseRetries bounds response-data retransmission; after that
	// many unanswered timeouts the server stops resending (the client
	// is presumed gone) without closing the connection.
	ResponseRetries int
}

func (c *ServerConfig) withDefaults() ServerConfig {
	out := *c
	if out.ResponseSegments == 0 {
		out.ResponseSegments = 2
	}
	if out.ResponseSegmentSize == 0 {
		out.ResponseSegmentSize = 1200
	}
	if out.ResponseDelay == 0 {
		out.ResponseDelay = 10 * time.Millisecond
	}
	if out.RTO == 0 {
		out.RTO = time.Second
	}
	if out.SYNACKRetries == 0 {
		out.SYNACKRetries = 2
	}
	if out.ResponseRetries == 0 {
		out.ResponseRetries = 5
	}
	return out
}

type serverState int

const (
	svListen serverState = iota
	svSynReceived
	svEstablished
	svCloseWait
	svClosed
	svAborted
)

// Server is a simulated TCP server endpoint handling one connection.
// After an abort (inbound RST) it answers further segments with RSTs,
// the way a real stack treats packets for a vanished connection.
type Server struct {
	sim    *netsim.Sim
	send   func([]byte)
	cfg    ServerConfig
	w      *wire
	parser *packet.SummaryParser
	rng    *rand.Rand

	state      serverState
	isn        uint32
	sndNxt     uint32
	rcvNxt     uint32
	clientISN  uint32
	synackTry  int
	retransmit netsim.Timer
	finSent    bool

	// respQ holds sent-but-unacknowledged response segments, oldest
	// first; respTimer drives their RTO retransmission.
	respQ     []respSeg
	respTry   int
	respTimer netsim.Timer
	dupAcks   int
	// ooo buffers out-of-order request data until the gap fills.
	ooo map[uint32][]byte

	// RequestData accumulates the application bytes received, in
	// order, for tests and ground-truth checks.
	RequestData []byte
	// Aborted reports whether the connection died on a RST.
	Aborted bool
}

// NewServer builds a server endpoint. Call Attach before delivering
// packets to it.
func NewServer(sim *netsim.Sim, cfg ServerConfig, rng *rand.Rand) *Server {
	s := &Server{
		sim:    sim,
		cfg:    cfg.withDefaults(),
		w:      newWire(cfg.Net),
		parser: packet.NewSummaryParser(),
		rng:    rng,
		state:  svListen,
	}
	s.isn = randISN(rng)
	return s
}

// Attach sets the transmit function (normally Path.SendFromServer).
func (s *Server) Attach(send func([]byte)) { s.send = send }

// Recv implements netsim.Endpoint.
func (s *Server) Recv(data []byte) {
	p, ok := decodeFor(s.parser, &s.cfg.Net, data)
	if !ok {
		return
	}
	if p.Flags.IsRST() {
		// An acceptable RST tears the connection down (RFC 793 §3.4;
		// we skip the window check — injectors aim for rcv.nxt and our
		// clients are honest).
		if s.state != svListen && s.state != svClosed {
			s.abort()
		}
		return
	}
	switch s.state {
	case svListen:
		if p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK) {
			s.handleSYN(p)
		}
	case svSynReceived:
		if p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK) {
			// Duplicate SYN: re-acknowledge.
			s.sendSYNACK()
			return
		}
		if p.Flags.Has(packet.FlagACK) && seqGE(p.Ack, s.isn+1) {
			s.state = svEstablished
			s.retransmit.Stop()
		}
		// Data or FIN riding the establishing segment (request-on-SYN
		// payloads, or a FIN whose predecessors were lost) is handled
		// once established.
		if s.state == svEstablished && (p.PayloadLen > 0 || p.Flags.Has(packet.FlagFIN)) {
			s.handleSegment(p)
		}
	case svEstablished, svCloseWait:
		s.handleSegment(p)
	case svClosed:
		// LAST_ACK/TIME_WAIT equivalent: a late duplicate of a cleanly
		// closed connection gets a challenge ACK, not a RST (RFC 793
		// §3.9) — wandering duplicates must not look like resets.
		s.send(s.w.build(packet.FlagsACK, s.sndNxt, s.rcvNxt, nil, false))
	case svAborted:
		// Half-open: answer with RST keyed to the incoming segment.
		s.respondRST(p)
	}
}

func (s *Server) handleSYN(p packet.Summary) {
	s.clientISN = p.Seq
	s.rcvNxt = p.Seq + 1
	if p.PayloadLen > 0 {
		// Data on SYN: accept it (the paper observes HTTP requests on
		// SYN, §4.1); it sits at seq ISN+1.
		s.RequestData = append(s.RequestData, p.Payload...)
		s.rcvNxt += uint32(p.PayloadLen)
	}
	s.state = svSynReceived
	s.sndNxt = s.isn + 1
	s.sendSYNACK()
}

func (s *Server) sendSYNACK() {
	s.send(s.w.build(packet.FlagsSYNACK, s.isn, s.rcvNxt, nil, true))
	s.synackTry++
	s.retransmit.Stop()
	if s.synackTry <= s.cfg.SYNACKRetries {
		s.retransmit = s.sim.Schedule(s.cfg.RTO<<(s.synackTry-1), func() {
			if s.state == svSynReceived {
				s.sendSYNACK()
			}
		})
	}
}

func (s *Server) handleSegment(p packet.Summary) {
	if p.Flags.Has(packet.FlagACK) {
		s.handleACK(p)
	}
	if p.PayloadLen > 0 {
		s.handleData(p)
	}
	if p.Flags.Has(packet.FlagFIN) {
		s.rcvNxt = p.Seq + uint32(p.PayloadLen) + 1
		s.send(s.w.build(packet.FlagsACK, s.sndNxt, s.rcvNxt, nil, false))
		if !s.finSent {
			s.finSent = true
			s.send(s.w.build(packet.FlagsFINACK, s.sndNxt, s.rcvNxt, nil, false))
			s.sndNxt++
		}
		s.respTimer.Stop()
		s.respQ = nil
		s.state = svClosed
	}
}

// handleACK retires acknowledged response segments and fast-retransmits
// on three duplicate ACKs, mirroring the client's loss recovery.
func (s *Server) handleACK(p packet.Summary) {
	progressed := false
	for len(s.respQ) > 0 {
		head := s.respQ[0]
		if !seqGE(p.Ack, head.seq+uint32(len(head.payload))) {
			break
		}
		s.respQ = s.respQ[1:]
		progressed = true
	}
	if progressed {
		s.dupAcks = 0
		s.respTimer.Stop()
		if len(s.respQ) > 0 {
			s.respTry = 1
			s.armRespRTO()
		}
		return
	}
	if len(s.respQ) > 0 && p.PayloadLen == 0 &&
		!p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagFIN) &&
		p.Ack == s.respQ[0].seq {
		s.dupAcks++
		if s.dupAcks >= 3 {
			s.dupAcks = 0
			s.retransmitResponseHead()
		}
	}
}

func (s *Server) handleData(p packet.Summary) {
	advanced := false
	if p.Seq == s.rcvNxt {
		s.RequestData = append(s.RequestData, p.Payload...)
		s.rcvNxt += uint32(p.PayloadLen)
		advanced = true
		// Drain any buffered out-of-order segments the gap fill exposed.
		for s.ooo != nil {
			payload, ok := s.ooo[s.rcvNxt]
			if !ok {
				break
			}
			delete(s.ooo, s.rcvNxt)
			s.RequestData = append(s.RequestData, payload...)
			s.rcvNxt += uint32(len(payload))
		}
	} else if seqGT(p.Seq, s.rcvNxt) {
		// Out-of-order: buffer a copy until the hole fills.
		if s.ooo == nil {
			s.ooo = make(map[uint32][]byte)
		}
		if _, dup := s.ooo[p.Seq]; !dup && len(s.ooo) < 32 {
			s.ooo[p.Seq] = append([]byte(nil), p.Payload...)
		}
	}
	// ACK whatever we have (cumulative; duplicates and gaps re-ACKed,
	// which doubles as the client's dup-ACK signal).
	s.send(s.w.build(packet.FlagsACK, s.sndNxt, s.rcvNxt, nil, false))
	// Respond only when the request actually advanced: retransmitted or
	// duplicated request data must not elicit a second response burst.
	if advanced {
		s.sim.Schedule(s.cfg.ResponseDelay, func() { s.respond() })
	}
}

// respond sends the configured response segments and tracks them for
// retransmission until acknowledged.
func (s *Server) respond() {
	if s.state != svEstablished {
		return
	}
	arm := len(s.respQ) == 0
	for i := 0; i < s.cfg.ResponseSegments; i++ {
		payload := responseBody(s.cfg.ResponseSegmentSize)
		s.respQ = append(s.respQ, respSeg{seq: s.sndNxt, payload: payload})
		s.send(s.w.build(packet.FlagsPSHACK, s.sndNxt, s.rcvNxt, payload, false))
		s.sndNxt += uint32(len(payload))
	}
	if arm && len(s.respQ) > 0 {
		s.respTry = 1
		s.armRespRTO()
	}
}

func (s *Server) retransmitResponseHead() {
	if len(s.respQ) == 0 {
		return
	}
	head := s.respQ[0]
	s.send(s.w.build(packet.FlagsPSHACK, head.seq, s.rcvNxt, head.payload, false))
}

// armRespRTO schedules response retransmission with exponential
// backoff. After ResponseRetries unanswered timeouts the server stops
// resending without closing — a real server eventually gives up on a
// silent client, and the already-captured flow must still classify as
// untampered.
func (s *Server) armRespRTO() {
	s.respTimer.Stop()
	s.respTimer = s.sim.Schedule(s.cfg.RTO<<(s.respTry-1), func() {
		if s.state != svEstablished || len(s.respQ) == 0 {
			return
		}
		if s.respTry > s.cfg.ResponseRetries {
			s.respQ = nil
			return
		}
		s.retransmitResponseHead()
		s.respTry++
		s.armRespRTO()
	})
}

// respondRST answers a segment for a dead connection, mirroring RFC 793
// reset generation: if the incoming segment has ACK, the RST carries
// seq = seg.ack; otherwise seq = 0 with RST+ACK acknowledging the
// segment.
func (s *Server) respondRST(p packet.Summary) {
	if p.Flags.Has(packet.FlagACK) {
		s.send(s.w.build(packet.FlagsRST, p.Ack, 0, nil, false))
	} else {
		s.send(s.w.build(packet.FlagsRSTACK, 0, p.Seq+uint32(p.PayloadLen)+1, nil, false))
	}
}

func (s *Server) abort() {
	s.state = svAborted
	s.Aborted = true
	s.retransmit.Stop()
	s.respTimer.Stop()
}

// respSeg is one unacknowledged response segment.
type respSeg struct {
	seq     uint32
	payload []byte
}

// responseBody builds a deterministic response payload of n bytes.
func responseBody(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('A' + i%26)
	}
	return b
}
