package tcpsim

import (
	"math/rand/v2"
	"time"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
)

// ServerConfig configures the simulated CDN edge endpoint for one
// connection.
type ServerConfig struct {
	Net NetProfile
	// ResponseSegments and ResponseSegmentSize shape the reply sent
	// after each request data packet that looks complete.
	ResponseSegments    int
	ResponseSegmentSize int
	// ResponseDelay models server think time.
	ResponseDelay time.Duration
	// RTO is the base retransmission timeout for the SYN+ACK.
	RTO time.Duration
	// SYNACKRetries bounds SYN+ACK retransmission.
	SYNACKRetries int
}

func (c *ServerConfig) withDefaults() ServerConfig {
	out := *c
	if out.ResponseSegments == 0 {
		out.ResponseSegments = 2
	}
	if out.ResponseSegmentSize == 0 {
		out.ResponseSegmentSize = 1200
	}
	if out.ResponseDelay == 0 {
		out.ResponseDelay = 10 * time.Millisecond
	}
	if out.RTO == 0 {
		out.RTO = time.Second
	}
	if out.SYNACKRetries == 0 {
		out.SYNACKRetries = 2
	}
	return out
}

type serverState int

const (
	svListen serverState = iota
	svSynReceived
	svEstablished
	svCloseWait
	svClosed
	svAborted
)

// Server is a simulated TCP server endpoint handling one connection.
// After an abort (inbound RST) it answers further segments with RSTs,
// the way a real stack treats packets for a vanished connection.
type Server struct {
	sim    *netsim.Sim
	send   func([]byte)
	cfg    ServerConfig
	w      *wire
	parser *packet.SummaryParser
	rng    *rand.Rand

	state      serverState
	isn        uint32
	sndNxt     uint32
	rcvNxt     uint32
	clientISN  uint32
	synackTry  int
	retransmit netsim.Timer
	finSent    bool

	// RequestData accumulates the application bytes received, in
	// order, for tests and ground-truth checks.
	RequestData []byte
	// Aborted reports whether the connection died on a RST.
	Aborted bool
}

// NewServer builds a server endpoint. Call Attach before delivering
// packets to it.
func NewServer(sim *netsim.Sim, cfg ServerConfig, rng *rand.Rand) *Server {
	s := &Server{
		sim:    sim,
		cfg:    cfg.withDefaults(),
		w:      newWire(cfg.Net),
		parser: packet.NewSummaryParser(),
		rng:    rng,
		state:  svListen,
	}
	s.isn = randISN(rng)
	return s
}

// Attach sets the transmit function (normally Path.SendFromServer).
func (s *Server) Attach(send func([]byte)) { s.send = send }

// Recv implements netsim.Endpoint.
func (s *Server) Recv(data []byte) {
	p, ok := decodeFor(s.parser, &s.cfg.Net, data)
	if !ok {
		return
	}
	if p.Flags.IsRST() {
		// An acceptable RST tears the connection down (RFC 793 §3.4;
		// we skip the window check — injectors aim for rcv.nxt and our
		// clients are honest).
		if s.state != svListen && s.state != svClosed {
			s.abort()
		}
		return
	}
	switch s.state {
	case svListen:
		if p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK) {
			s.handleSYN(p)
		}
	case svSynReceived:
		if p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK) {
			// Duplicate SYN: re-acknowledge.
			s.sendSYNACK()
			return
		}
		if p.Flags.Has(packet.FlagACK) && seqGE(p.Ack, s.isn+1) {
			s.state = svEstablished
			s.retransmit.Stop()
		}
		// SYN payloads (request-on-SYN) are delivered once established.
		if p.PayloadLen > 0 && s.state == svEstablished {
			s.handleData(p)
		}
	case svEstablished, svCloseWait:
		s.handleSegment(p)
	case svAborted, svClosed:
		// Half-open: answer with RST keyed to the incoming segment.
		s.respondRST(p)
	}
}

func (s *Server) handleSYN(p packet.Summary) {
	s.clientISN = p.Seq
	s.rcvNxt = p.Seq + 1
	if p.PayloadLen > 0 {
		// Data on SYN: accept it (the paper observes HTTP requests on
		// SYN, §4.1); it sits at seq ISN+1.
		s.RequestData = append(s.RequestData, p.Payload...)
		s.rcvNxt += uint32(p.PayloadLen)
	}
	s.state = svSynReceived
	s.sndNxt = s.isn + 1
	s.sendSYNACK()
}

func (s *Server) sendSYNACK() {
	s.send(s.w.build(packet.FlagsSYNACK, s.isn, s.rcvNxt, nil, true))
	s.synackTry++
	s.retransmit.Stop()
	if s.synackTry <= s.cfg.SYNACKRetries {
		s.retransmit = s.sim.Schedule(s.cfg.RTO<<(s.synackTry-1), func() {
			if s.state == svSynReceived {
				s.sendSYNACK()
			}
		})
	}
}

func (s *Server) handleSegment(p packet.Summary) {
	if p.PayloadLen > 0 {
		s.handleData(p)
	}
	if p.Flags.Has(packet.FlagFIN) {
		s.rcvNxt = p.Seq + uint32(p.PayloadLen) + 1
		s.send(s.w.build(packet.FlagsACK, s.sndNxt, s.rcvNxt, nil, false))
		if !s.finSent {
			s.finSent = true
			s.send(s.w.build(packet.FlagsFINACK, s.sndNxt, s.rcvNxt, nil, false))
			s.sndNxt++
		}
		s.state = svClosed
	}
}

func (s *Server) handleData(p packet.Summary) {
	if p.Seq == s.rcvNxt {
		s.RequestData = append(s.RequestData, p.Payload...)
		s.rcvNxt += uint32(p.PayloadLen)
	}
	// ACK whatever we have (cumulative; duplicates re-ACKed).
	s.send(s.w.build(packet.FlagsACK, s.sndNxt, s.rcvNxt, nil, false))
	// Respond to each request burst after think time.
	s.sim.Schedule(s.cfg.ResponseDelay, func() { s.respond() })
}

// respond sends the configured response segments.
func (s *Server) respond() {
	if s.state != svEstablished {
		return
	}
	for i := 0; i < s.cfg.ResponseSegments; i++ {
		payload := responseBody(s.cfg.ResponseSegmentSize)
		s.send(s.w.build(packet.FlagsPSHACK, s.sndNxt, s.rcvNxt, payload, false))
		s.sndNxt += uint32(len(payload))
	}
}

// respondRST answers a segment for a dead connection, mirroring RFC 793
// reset generation: if the incoming segment has ACK, the RST carries
// seq = seg.ack; otherwise seq = 0 with RST+ACK acknowledging the
// segment.
func (s *Server) respondRST(p packet.Summary) {
	if p.Flags.Has(packet.FlagACK) {
		s.send(s.w.build(packet.FlagsRST, p.Ack, 0, nil, false))
	} else {
		s.send(s.w.build(packet.FlagsRSTACK, 0, p.Seq+uint32(p.PayloadLen)+1, nil, false))
	}
}

func (s *Server) abort() {
	s.state = svAborted
	s.Aborted = true
	s.retransmit.Stop()
}

// responseBody builds a deterministic response payload of n bytes.
func responseBody(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('A' + i%26)
	}
	return b
}
