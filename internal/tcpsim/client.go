package tcpsim

import (
	"math/rand/v2"
	"time"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
)

// Behavior selects the client's personality. Beyond the normal
// request/response flow, these model the §4.2 threat-to-validity
// sources (scanners, Happy Eyeballs) and the anomalous-but-benign
// clients behind the paper's uncategorised 2.3%.
type Behavior int

// Client behaviours.
const (
	// BehaviorNormal completes the handshake, sends its request
	// segments, awaits the response, and closes with FIN.
	BehaviorNormal Behavior = iota
	// BehaviorScanner is a ZMap-style scanner: single SYN, then a bare
	// RST in response to the SYN+ACK. Combine with IPIDFixed 54321 and
	// SYNOptions=false for the full fingerprint (§4.2).
	BehaviorScanner
	// BehaviorHappyEyeballsReset cancels after the SYN+ACK with a RST,
	// the RFC 8305 (Chromium) losing-connection behaviour.
	BehaviorHappyEyeballsReset
	// BehaviorHappyEyeballsDrop abandons the attempt silently after the
	// SYN, the RFC 6555 (curl) behaviour.
	BehaviorHappyEyeballsDrop
	// BehaviorStallHandshake completes the handshake and then goes
	// silent — a benign source of ⟨SYN;ACK→∅⟩ lookalikes.
	BehaviorStallHandshake
	// BehaviorRedundantACK completes the handshake, emits a duplicate
	// ACK, and goes silent: an anomalous grouping outside every
	// signature (the paper's "other" 2.3%, §4.1).
	BehaviorRedundantACK
	// BehaviorDoubleSYN retransmits the SYN aggressively before
	// proceeding normally, producing a non-canonical prefix.
	BehaviorDoubleSYN
	// BehaviorAbandon completes the request/response exchange but
	// never closes: the connection just goes idle without a FIN, the
	// dominant benign cause of "terminated after multiple data
	// packets" records (§4.1's uncovered Post-Data mass).
	BehaviorAbandon
	// BehaviorResetClose completes the exchange and terminates with a
	// RST instead of a FIN — the widespread browser/app shortcut that
	// makes ⟨PSH+ACK;Data → RST⟩ match connections from virtually
	// every country (§4.1, §4.3).
	BehaviorResetClose
)

// Segment is one client data send.
type Segment struct {
	Data []byte
	// Gap delays this segment relative to its trigger (handshake
	// completion or the previous segment).
	Gap time.Duration
	// AfterResponse holds this segment until response data has been
	// received following the previous segment (HTTP keep-alive style).
	AfterResponse bool
}

// ClientConfig configures a client connection attempt.
type ClientConfig struct {
	Net      NetProfile
	Behavior Behavior
	// Segments is the request script.
	Segments []Segment
	// SYNPayload, if set, rides on the SYN itself (TCP Fast-Open-style
	// optimisation or amplification probes, §4.1).
	SYNPayload []byte
	// SYNRetries and DataRetries bound retransmission attempts.
	SYNRetries  int
	DataRetries int
	// RTO is the base retransmission timeout, doubled per retry.
	RTO time.Duration
	// CloseDelay is how long after the response the client lingers
	// before FIN.
	CloseDelay time.Duration
	// ResponseTimeout closes the connection (silently) when no
	// response arrives after the request completed.
	ResponseTimeout time.Duration
}

func (c *ClientConfig) withDefaults() ClientConfig {
	out := *c
	if out.SYNRetries == 0 {
		out.SYNRetries = 3
	}
	if out.DataRetries == 0 {
		out.DataRetries = 3
	}
	if out.RTO == 0 {
		out.RTO = time.Second
	}
	if out.CloseDelay == 0 {
		out.CloseDelay = 50 * time.Millisecond
	}
	if out.ResponseTimeout == 0 {
		out.ResponseTimeout = 20 * time.Second
	}
	return out
}

// clientState is the client's connection state.
type clientState int

const (
	clStart clientState = iota
	clSynSent
	clEstablished
	clFinWait
	clClosed
)

// Client is a simulated TCP client endpoint.
type Client struct {
	sim    *netsim.Sim
	send   func([]byte)
	cfg    ClientConfig
	w      *wire
	parser *packet.SummaryParser
	rng    *rand.Rand

	state   clientState
	isn     uint32
	sndNxt  uint32
	rcvNxt  uint32
	synTry  int
	dataTry int

	segIdx       int  // next segment index to send
	awaitingResp bool // a sent segment awaits response data
	respSeen     bool // response data seen since last segment
	sentAll      bool
	finSent      bool
	finAcked     bool
	finSeq       uint32
	finTry       int
	// sendQ holds sent-but-unacknowledged data segments, oldest first;
	// the head is what RTO and fast retransmit resend.
	sendQ   []sendSeg
	dupAcks int
	// ooo buffers out-of-order response data (seq → length; the client
	// never inspects response bytes) until the gap fills.
	ooo          map[uint32]int
	retransTimer netsim.Timer
	respTimer    netsim.Timer
	closeTimer   netsim.Timer
	ackTimer     netsim.Timer
	finTimer     netsim.Timer
	ackPending   bool

	// Done reports how the attempt ended, for tests and ground truth.
	Done   bool
	Reason string
}

// NewClient builds a client. Call Attach to wire it to a path sender,
// then Start to begin the attempt.
func NewClient(sim *netsim.Sim, cfg ClientConfig, rng *rand.Rand) *Client {
	c := &Client{
		sim:    sim,
		cfg:    cfg.withDefaults(),
		w:      newWire(cfg.Net),
		parser: packet.NewSummaryParser(),
		rng:    rng,
	}
	c.isn = randISN(rng)
	return c
}

// Attach sets the function used to transmit packets (normally
// Path.SendFromClient).
func (c *Client) Attach(send func([]byte)) { c.send = send }

// Start begins the connection attempt.
func (c *Client) Start() {
	c.state = clSynSent
	c.sendSYN()
}

func (c *Client) sendSYN() {
	flags := packet.FlagsSYN
	payload := c.cfg.SYNPayload
	c.send(c.w.build(flags, c.isn, 0, payload, true))
	c.sndNxt = c.isn + 1 + uint32(len(payload))
	c.synTry++
	if c.cfg.Behavior == BehaviorDoubleSYN && c.synTry == 1 {
		// Immediate duplicate, before any timeout.
		c.sim.Schedule(30*time.Millisecond, func() {
			if c.state == clSynSent {
				c.send(c.w.build(packet.FlagsSYN, c.isn, 0, payload, true))
			}
		})
	}
	c.retransTimer.Stop()
	if c.synTry <= c.cfg.SYNRetries {
		backoff := c.cfg.RTO << (c.synTry - 1)
		c.retransTimer = c.sim.Schedule(backoff, func() {
			if c.state == clSynSent {
				if c.synTry > c.cfg.SYNRetries {
					c.finish("syn-timeout")
					return
				}
				c.sendSYN()
			}
		})
	} else {
		c.retransTimer = c.sim.Schedule(c.cfg.RTO<<uint(c.synTry), func() {
			if c.state == clSynSent {
				c.finish("syn-timeout")
			}
		})
	}
}

// Recv implements netsim.Endpoint.
func (c *Client) Recv(data []byte) {
	if c.state == clClosed {
		return
	}
	s, ok := decodeFor(c.parser, &c.cfg.Net, data)
	if !ok {
		return
	}
	if s.Flags.IsRST() {
		c.finish("rst")
		return
	}
	switch c.state {
	case clSynSent:
		if s.Flags.Has(packet.FlagSYN | packet.FlagACK) {
			c.handleSYNACK(s)
		}
	case clEstablished, clFinWait:
		c.handleEstablished(s)
	}
}

func (c *Client) handleSYNACK(s packet.Summary) {
	c.retransTimer.Stop()
	c.rcvNxt = s.Seq + 1
	switch c.cfg.Behavior {
	case BehaviorScanner, BehaviorHappyEyeballsReset:
		// Abort with RST instead of completing. Scanners send a bare
		// RST with the sequence number the SYN+ACK acknowledged.
		c.send(c.w.build(packet.FlagsRST, s.Ack, 0, nil, false))
		c.finish("reset-after-synack")
		return
	case BehaviorHappyEyeballsDrop:
		c.finish("abandoned")
		return
	}
	c.state = clEstablished
	c.send(c.w.build(packet.FlagsACK, c.sndNxt, c.rcvNxt, nil, false))
	switch c.cfg.Behavior {
	case BehaviorStallHandshake:
		c.finish("stalled")
		return
	case BehaviorRedundantACK:
		c.sim.Schedule(40*time.Millisecond, func() {
			c.send(c.w.build(packet.FlagsACK, c.sndNxt, c.rcvNxt, nil, false))
			c.finish("redundant-ack-stall")
		})
		return
	}
	if len(c.cfg.Segments) == 0 {
		c.sentAll = true
		c.scheduleClose()
		return
	}
	c.scheduleSegment()
}

// scheduleSegment arms the send of cfg.Segments[c.segIdx].
func (c *Client) scheduleSegment() {
	if c.segIdx >= len(c.cfg.Segments) {
		c.sentAll = true
		c.armResponseTimeout()
		return
	}
	seg := c.cfg.Segments[c.segIdx]
	if seg.AfterResponse && !c.respSeen {
		c.awaitingResp = true
		c.armResponseTimeout()
		return
	}
	gap := seg.Gap
	if gap == 0 {
		gap = 5 * time.Millisecond
	}
	c.sim.Schedule(gap, func() {
		if c.state != clEstablished {
			return
		}
		c.sendSegment(seg)
	})
}

func (c *Client) sendSegment(seg Segment) {
	seq := c.sndNxt
	c.sendQ = append(c.sendQ, sendSeg{seq: seq, data: seg.Data})
	c.respSeen = false
	c.send(c.w.build(packet.FlagsPSHACK, seq, c.rcvNxt, seg.Data, false))
	c.sndNxt = seq + uint32(len(seg.Data))
	if len(c.sendQ) == 1 {
		// Fresh RTO series for a newly exposed head-of-queue.
		c.dataTry = 1
		c.armDataRTO()
	}
	c.segIdx++
	c.scheduleSegment()
}

// armDataRTO schedules the retransmission timer for the current try,
// with exponential backoff.
func (c *Client) armDataRTO() {
	c.retransTimer.Stop()
	backoff := c.cfg.RTO << (c.dataTry - 1)
	c.retransTimer = c.sim.Schedule(backoff, func() {
		if c.state != clEstablished || len(c.sendQ) == 0 {
			return
		}
		if c.dataTry > c.cfg.DataRetries {
			c.finish("data-timeout")
			return
		}
		c.retransmitHead()
		c.dataTry++
		c.armDataRTO()
	})
}

// retransmitHead resends the oldest unacknowledged segment.
func (c *Client) retransmitHead() {
	h := c.sendQ[0]
	c.send(c.w.build(packet.FlagsPSHACK, h.seq, c.rcvNxt, h.data, false))
}

func (c *Client) armResponseTimeout() {
	c.respTimer.Stop()
	c.respTimer = c.sim.Schedule(c.cfg.ResponseTimeout, func() {
		if c.state == clEstablished && !c.respSeen {
			c.finish("response-timeout")
		}
	})
}

func (c *Client) handleEstablished(s packet.Summary) {
	if s.Flags.Has(packet.FlagSYN) {
		// Duplicate SYN+ACK: our handshake ACK was lost in transit.
		// Re-acknowledge cumulatively so the server can establish.
		c.send(c.w.build(packet.FlagsACK, c.sndNxt, c.rcvNxt, nil, false))
		return
	}
	if s.Flags.Has(packet.FlagACK) {
		c.handleACK(s)
	}
	if s.PayloadLen > 0 {
		if s.Seq == c.rcvNxt {
			c.rcvNxt += uint32(s.PayloadLen)
			// Drain any buffered out-of-order continuation.
			for c.ooo != nil {
				l, ok := c.ooo[c.rcvNxt]
				if !ok {
					break
				}
				delete(c.ooo, c.rcvNxt)
				c.rcvNxt += uint32(l)
			}
		} else if seqGT(s.Seq, c.rcvNxt) {
			// Out-of-order: buffer the length and emit an immediate
			// duplicate ACK so the server's fast retransmit can fill
			// the gap.
			if c.ooo == nil {
				c.ooo = make(map[uint32]int)
			}
			if len(c.ooo) < 64 {
				c.ooo[s.Seq] = s.PayloadLen
			}
			c.send(c.w.build(packet.FlagsACK, c.sndNxt, c.rcvNxt, nil, false))
		}
		// Below-rcvNxt duplicates still count as response activity and
		// get re-ACKed by the delayed ACK below.
		c.respSeen = true
		c.respTimer.Stop()
		// Delayed ACK: coalesce the acknowledgments of a response
		// burst into one cumulative ACK, as real stacks do.
		if !c.ackPending {
			c.ackPending = true
			c.ackTimer = c.sim.Schedule(15*time.Millisecond, func() {
				if c.state == clClosed || !c.ackPending {
					return
				}
				c.ackPending = false
				c.send(c.w.build(packet.FlagsACK, c.sndNxt, c.rcvNxt, nil, false))
			})
		}
		if c.awaitingResp {
			c.awaitingResp = false
			c.scheduleSegment()
		}
		if c.sentAll && !c.finSent {
			switch c.cfg.Behavior {
			case BehaviorAbandon:
				// The kernel still acknowledges delivered data even
				// though the application goes idle.
				if c.ackPending {
					c.ackPending = false
					c.ackTimer.Stop()
					c.send(c.w.build(packet.FlagsACK, c.sndNxt, c.rcvNxt, nil, false))
				}
				c.finish("abandoned-idle")
			case BehaviorResetClose:
				c.sim.Schedule(c.cfg.CloseDelay, func() {
					if c.state == clEstablished && !c.Done {
						c.send(c.w.build(packet.FlagsRST, c.sndNxt, 0, nil, false))
						c.finish("reset-close")
					}
				})
			default:
				c.scheduleClose()
			}
		}
	}
	if s.Flags.Has(packet.FlagFIN) {
		c.ackPending = false
		c.ackTimer.Stop()
		c.rcvNxt = s.Seq + uint32(s.PayloadLen) + 1
		c.send(c.w.build(packet.FlagsACK, c.sndNxt, c.rcvNxt, nil, false))
		if !c.finSent {
			c.send(c.w.build(packet.FlagsFINACK, c.sndNxt, c.rcvNxt, nil, false))
			c.finSent = true
			c.sndNxt++
		}
		c.finish("closed-by-peer")
	}
}

// handleACK applies cumulative acknowledgment progress: fully-acked
// segments leave the send queue; three duplicate ACKs for the head
// trigger a fast retransmit without waiting for the RTO.
func (c *Client) handleACK(s packet.Summary) {
	if c.finSent && !c.finAcked && seqGE(s.Ack, c.sndNxt) {
		c.finAcked = true
		c.finTimer.Stop()
	}
	if len(c.sendQ) == 0 {
		return
	}
	progressed := false
	for len(c.sendQ) > 0 {
		h := c.sendQ[0]
		if !seqGE(s.Ack, h.seq+uint32(len(h.data))) {
			break
		}
		c.sendQ = c.sendQ[1:]
		progressed = true
	}
	switch {
	case progressed:
		c.dupAcks = 0
		c.retransTimer.Stop()
		if len(c.sendQ) > 0 {
			c.dataTry = 1
			c.armDataRTO()
		}
	case s.PayloadLen == 0 && !s.Flags.Has(packet.FlagSYN) && !s.Flags.Has(packet.FlagFIN) &&
		s.Ack == c.sendQ[0].seq:
		c.dupAcks++
		if c.dupAcks == 3 {
			c.dupAcks = 0
			c.retransmitHead()
		}
	}
}

func (c *Client) scheduleClose() {
	if c.closeTimer != (netsim.Timer{}) {
		return
	}
	c.closeTimer = c.sim.Schedule(c.cfg.CloseDelay, func() {
		if c.state != clEstablished || c.finSent {
			return
		}
		c.finSent = true
		c.state = clFinWait
		c.finSeq = c.sndNxt
		c.sndNxt++
		c.sendFIN()
		// Await the server FIN; handled in handleEstablished. Give up
		// eventually either way.
		c.sim.Schedule(5*time.Second, func() {
			if !c.Done {
				c.finish("fin-timeout")
			}
		})
	})
}

// sendFIN transmits (or retransmits) the client FIN with backoff until
// it is acknowledged or the close gives up.
func (c *Client) sendFIN() {
	c.send(c.w.build(packet.FlagsFINACK, c.finSeq, c.rcvNxt, nil, false))
	c.finTry++
	c.finTimer.Stop()
	if c.finTry <= 3 {
		c.finTimer = c.sim.Schedule(c.cfg.RTO<<(c.finTry-1), func() {
			if !c.Done && c.state == clFinWait && !c.finAcked {
				c.sendFIN()
			}
		})
	}
}

func (c *Client) finish(reason string) {
	if c.Done {
		return
	}
	c.state = clClosed
	c.Done = true
	c.Reason = reason
	c.retransTimer.Stop()
	c.respTimer.Stop()
	c.ackTimer.Stop()
	c.finTimer.Stop()
}

// sendSeg is one sent-but-unacknowledged client data segment.
type sendSeg struct {
	seq  uint32
	data []byte
}

// seqGE reports a >= b in sequence space.
func seqGE(a, b uint32) bool { return int32(a-b) >= 0 }

// seqGT reports a > b in sequence space.
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }
