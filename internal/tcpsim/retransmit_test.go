package tcpsim

import (
	"strings"
	"testing"
	"time"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
)

// blackholeMB drops everything in both directions.
type blackholeMB struct{}

func (blackholeMB) Process(dir netsim.Direction, data []byte, inject func(netsim.Direction, []byte)) bool {
	return false
}

// s2cDropMB drops server->client traffic except the SYN+ACK, so the
// handshake completes but the data phase's reverse path is dead.
type s2cDropMB struct{}

func (s2cDropMB) Process(dir netsim.Direction, data []byte, inject func(netsim.Direction, []byte)) bool {
	if dir == netsim.ClientToServer {
		return true
	}
	var ip packet.IPv4
	if err := ip.DecodeFromBytes(data); err != nil {
		return true
	}
	var tcp packet.TCP
	if err := tcp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		return true
	}
	return tcp.Flags.Has(packet.FlagSYN)
}

func TestSYNRetransmissionSchedule(t *testing.T) {
	// With everything blackholed, the client retransmits its SYN with
	// exponential backoff and gives up. Nothing reaches the server.
	h := newHarness(t, ClientConfig{Net: clientProfile(), Segments: []Segment{{Data: []byte("x")}},
		SYNRetries: 3, RTO: time.Second}, blackholeMB{})
	h.run()
	if len(h.seen) != 0 {
		t.Fatalf("server saw %d packets through a blackhole", len(h.seen))
	}
	if !h.client.Done || h.client.Reason != "syn-timeout" {
		t.Errorf("client reason = %q", h.client.Reason)
	}
	// The client must have stopped within a bounded virtual time:
	// 1+2+4 backoff plus final wait ≈ 15s, not hours.
	if h.sim.Now() > netsim.Time(60*time.Second) {
		t.Errorf("client gave up only at %v", h.sim.Now())
	}
}

func TestDataRetransmissionVisibleAtServer(t *testing.T) {
	// Server->client direction dropped: the client never sees ACKs or
	// responses, so it retransmits its request — all copies arrive
	// inbound (what a drop-side censor's victim looks like from the
	// server when only the reverse path is broken).
	h := newHarness(t, ClientConfig{Net: clientProfile(),
		Segments: []Segment{{Data: []byte("retry-me")}}, DataRetries: 2, RTO: time.Second},
		s2cDropMB{})
	h.run()
	data := 0
	for _, s := range h.seen {
		if s.PayloadLen > 0 {
			data++
		}
	}
	if data < 2 {
		t.Errorf("server saw %d copies of the request, want retransmissions", data)
	}
	if h.client.Reason != "data-timeout" {
		t.Errorf("client reason = %q", h.client.Reason)
	}
	// Retransmissions carry the same sequence number.
	var seqs []uint32
	for _, s := range h.seen {
		if s.PayloadLen > 0 {
			seqs = append(seqs, s.Seq)
		}
	}
	if len(seqs) == 0 {
		t.Fatal("no data packets recorded")
	}
	for _, q := range seqs[1:] {
		if q != seqs[0] {
			t.Errorf("retransmission seq %d != original %d", q, seqs[0])
		}
	}
}

func TestDelayedACKCoalesces(t *testing.T) {
	// The server responds with 2 segments; the client must emit one
	// cumulative ACK, not two.
	h := newHarness(t, ClientConfig{Net: clientProfile(), Segments: []Segment{{Data: []byte("q")}}})
	h.run()
	bareACKs := 0
	for _, s := range h.seen {
		if s.Flags == packet.FlagsACK && s.PayloadLen == 0 {
			bareACKs++
		}
	}
	// handshake ACK + one delayed data ACK + final ACK of FIN = 3.
	if bareACKs != 3 {
		t.Errorf("bare ACK count = %d, want 3 (handshake, coalesced data, FIN ack): %s", bareACKs, h.flagSeq())
	}
}

func TestServerSYNACKRetransmission(t *testing.T) {
	// Deliver a SYN but swallow the client's ACK (client unreachable):
	// the server retransmits its SYN+ACK a bounded number of times.
	sim := netsim.NewSim(0)
	rng := testRNG()
	srv := NewServer(sim, ServerConfig{Net: serverProfile(), RTO: time.Second, SYNACKRetries: 2}, rng)
	var out int
	srv.Attach(func([]byte) { out++ })
	w := newWire(clientProfile())
	srv.Recv(w.build(packet.FlagsSYN, 100, 0, nil, true))
	sim.Run(0)
	if out != 3 { // initial + 2 retries
		t.Errorf("server sent %d SYN+ACKs, want 3", out)
	}
}

func TestClientFINTimeout(t *testing.T) {
	// The server's FIN response is dropped after the request completes:
	// client times out of FIN-WAIT rather than hanging forever.
	h := newHarness(t, ClientConfig{Net: clientProfile(), Segments: []Segment{{Data: []byte("x")}}})
	// Run until the request/response completes, then kill s->c.
	h.client.Start()
	h.sim.RunUntil(netsim.Time(2 * time.Second))
	h.path.Down = true
	h.sim.Run(0)
	if !h.client.Done {
		t.Error("client never finished after path went down")
	}
}

func TestResponseTimeout(t *testing.T) {
	// Server never responds with data (it only ACKs): the client's
	// response timeout fires.
	sim := netsim.NewSim(0)
	rng := testRNG()
	cli := NewClient(sim, ClientConfig{
		Net:             clientProfile(),
		Segments:        []Segment{{Data: []byte("req")}},
		ResponseTimeout: 5 * time.Second,
	}, rng)
	// A fake server that completes the handshake and ACKs data but
	// never sends payload or FIN.
	sw := newWire(serverProfile())
	var srvISN uint32 = 9000
	cli.Attach(func(data []byte) {
		var s packet.Summary
		p := packet.NewSummaryParser()
		if err := p.Parse(data, &s); err != nil {
			return
		}
		switch {
		case s.Flags.Has(packet.FlagSYN):
			cli.Recv(sw.build(packet.FlagsSYNACK, srvISN, s.Seq+1, nil, true))
		case s.PayloadLen > 0:
			cli.Recv(sw.build(packet.FlagsACK, srvISN+1, s.Seq+uint32(s.PayloadLen), nil, false))
		}
	})
	cli.Start()
	sim.Run(0)
	if cli.Reason != "response-timeout" {
		t.Errorf("client reason = %q, want response-timeout", cli.Reason)
	}
}

func TestSegmentGapHonored(t *testing.T) {
	// A segment with a 2-second gap arrives in a later timestamp
	// bucket than the handshake.
	h := newHarness(t, ClientConfig{Net: clientProfile(),
		Segments: []Segment{{Data: []byte("late"), Gap: 2 * time.Second}}})
	h.run()
	var hsTS, dataTS int64 = -1, -1
	for i, s := range h.seen {
		if s.Flags == packet.FlagsACK && hsTS < 0 {
			hsTS = h.times[i].Unix()
		}
		if s.PayloadLen > 0 {
			dataTS = h.times[i].Unix()
		}
	}
	if dataTS < hsTS+2 {
		t.Errorf("data at %ds, handshake at %ds; gap not honored", dataTS, hsTS)
	}
}

func TestResetCloseEmitsRST(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Behavior: BehaviorResetClose,
		Segments: []Segment{{Data: []byte("q")}}})
	h.run()
	fs := h.flagSeq()
	if !strings.HasSuffix(fs, "RST") {
		t.Errorf("sequence = %q, want trailing RST", fs)
	}
	if strings.Contains(fs, "FIN") {
		t.Errorf("reset-closer sent a FIN: %q", fs)
	}
	if h.client.Reason != "reset-close" {
		t.Errorf("reason = %q", h.client.Reason)
	}
}

func TestAbandonGoesSilent(t *testing.T) {
	h := newHarness(t, ClientConfig{Net: clientProfile(), Behavior: BehaviorAbandon,
		Segments: []Segment{{Data: []byte("q")}}})
	h.run()
	fs := h.flagSeq()
	if strings.Contains(fs, "FIN") || strings.Contains(fs, "RST") {
		t.Errorf("abandoner terminated explicitly: %q", fs)
	}
	// But the request was delivered and acknowledged.
	if !strings.Contains(fs, "PSH+ACK") {
		t.Errorf("no data delivered: %q", fs)
	}
	if h.client.Reason != "abandoned-idle" {
		t.Errorf("reason = %q", h.client.Reason)
	}
}
