// Package faults implements composable benign packet impairments for
// the network simulator: Gilbert–Elliott burst loss, reordering,
// duplication, delay jitter, bit corruption, and MTU truncation. A
// Chain plugs into netsim.Path as a per-segment hook, so every packet
// crossing an impaired path — client traffic, server responses, even
// censor-injected forgeries — is subject to the same pathologies real
// links impose.
//
// The point (paper §3.2, §5.1) is adversarially-benign input: the
// tampering signatures must not fire on loss, retransmission,
// reordering, or duplication. Corrupted and truncated packets carry
// broken TCP/IP checksums, so receivers (endpoints and the capture
// tap) discard them exactly as a real NIC/kernel would — corruption
// degenerates to loss on the wire, never to garbage in a record.
//
// Loss is modelled as a continuous-time two-state Markov chain
// (Gilbert–Elliott): the link dwells in a Good state (rare residual
// loss) and occasionally falls into a Bad burst state (heavy loss),
// with exponential dwell times MeanGood and MeanBad. Burst loss is
// what distinguishes real congestion from i.i.d. drops: consecutive
// packets of one flight die together, while retransmissions spaced
// RTO apart decorrelate — exactly the regime a robust detector must
// tell apart from intentional blackholing.
package faults

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"tamperdetect/internal/netsim"
)

// Config describes one impairment profile. The zero value is a clean
// link (no impairment); fields compose freely.
type Config struct {
	// Grade names the profile ("clean", "lossy", "hostile", or a
	// custom label); informational, and mixed into per-connection
	// impairment seeds so different grades draw different randomness.
	Grade string

	// Gilbert–Elliott burst loss: mean dwell times of the Good and Bad
	// states and the per-packet loss probability within each. With
	// MeanGood/MeanBad unset, LossGood acts as plain i.i.d. loss.
	MeanGood time.Duration
	MeanBad  time.Duration
	LossGood float64
	LossBad  float64

	// DupProb duplicates a packet; the copy trails by DupDelay
	// (default 500µs), the switch-flap pattern.
	DupProb  float64
	DupDelay time.Duration
	// ReorderProb holds a packet back by an extra delay drawn from
	// (ReorderDelay/4, ReorderDelay], letting later packets overtake it.
	ReorderProb  float64
	ReorderDelay time.Duration
	// JitterMax adds uniform [0, JitterMax) delay to every packet.
	JitterMax time.Duration
	// CorruptProb flips one random bit; the receiver's checksum
	// verification then discards the packet.
	CorruptProb float64
	// TruncateProb cuts packets longer than TruncateMTU down to
	// TruncateMTU bytes (a path-MTU black hole without ICMP); the
	// mangled packet fails checksum verification downstream.
	TruncateProb float64
	TruncateMTU  int

	// Stats, when non-nil, receives atomic event counts from every
	// Chain built from this Config. One Stats is typically shared by
	// all of a simulation's chains (Config is copied by value per
	// connection; the pointer rides along), so totals aggregate across
	// the whole run and can be read live.
	Stats *Stats `json:"-"`
}

// Enabled reports whether the profile impairs anything.
func (c *Config) Enabled() bool {
	return c.LossGood > 0 || c.LossBad > 0 || c.DupProb > 0 ||
		c.ReorderProb > 0 || c.JitterMax > 0 || c.CorruptProb > 0 ||
		c.TruncateProb > 0
}

// EffectiveLoss returns the steady-state per-traversal loss
// probability implied by the Gilbert–Elliott parameters (excluding
// corruption/truncation, which also behave as loss).
func (c *Config) EffectiveLoss() float64 {
	if c.MeanGood <= 0 || c.MeanBad <= 0 {
		return c.LossGood
	}
	piBad := c.MeanBad.Seconds() / (c.MeanGood.Seconds() + c.MeanBad.Seconds())
	return piBad*c.LossBad + (1-piBad)*c.LossGood
}

// grades is the named-profile table. "lossy" is a plausible
// congested-but-working consumer path (~1.5% steady-state loss in
// short bursts); "hostile" is a badly degraded link (~9% loss, heavy
// reordering) near the edge of what a TCP session survives.
var grades = map[string]Config{
	"clean": {Grade: "clean"},
	"lossy": {
		Grade:    "lossy",
		MeanGood: 2 * time.Second, MeanBad: 80 * time.Millisecond,
		LossGood: 0.002, LossBad: 0.35,
		DupProb:     0.005,
		ReorderProb: 0.01, ReorderDelay: 25 * time.Millisecond,
		JitterMax:    4 * time.Millisecond,
		CorruptProb:  0.003,
		TruncateProb: 0.001, TruncateMTU: 1000,
	},
	"hostile": {
		Grade:    "hostile",
		MeanGood: 600 * time.Millisecond, MeanBad: 150 * time.Millisecond,
		LossGood: 0.01, LossBad: 0.45,
		DupProb:     0.02,
		ReorderProb: 0.05, ReorderDelay: 60 * time.Millisecond,
		JitterMax:    12 * time.Millisecond,
		CorruptProb:  0.01,
		TruncateProb: 0.005, TruncateMTU: 1000,
	},
}

// Grade resolves a named impairment profile.
func Grade(name string) (Config, error) {
	c, ok := grades[name]
	if !ok {
		return Config{}, fmt.Errorf("faults: unknown impairment grade %q (known: %v)", name, GradeNames())
	}
	return c, nil
}

// GradeNames lists the named profiles, sorted.
func GradeNames() []string {
	out := make([]string, 0, len(grades))
	for n := range grades {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// geState is one direction's Gilbert–Elliott channel state.
type geState struct {
	bad  bool
	last netsim.Time
	init bool
}

// Chain is one path's impairment instance. It keeps independent
// Gilbert–Elliott state per direction (forward and reverse paths
// congest independently) and draws all randomness from its own rng,
// so a simulation stays deterministic per seed. Not safe for
// concurrent use; a Chain belongs to exactly one netsim.Sim.
type Chain struct {
	cfg Config
	rng *rand.Rand
	ge  [2]geState
}

// NewChain builds a Chain for one path.
func NewChain(cfg Config, rng *rand.Rand) *Chain {
	return &Chain{cfg: cfg, rng: rng}
}

// Hook is the netsim.SegmentHook; install it as PathConfig.Hook.
func (ch *Chain) Hook(now netsim.Time, dir netsim.Direction, data []byte) []netsim.Delivery {
	cfg := &ch.cfg
	if ch.rng.Float64() < ch.lossProb(dir, now) {
		if cfg.Stats != nil {
			cfg.Stats.Lost.Add(1)
		}
		return nil
	}
	d := netsim.Delivery{Data: data}
	if cfg.JitterMax > 0 {
		d.ExtraDelay = time.Duration(ch.rng.Int64N(int64(cfg.JitterMax)))
	}
	if cfg.ReorderProb > 0 && ch.rng.Float64() < cfg.ReorderProb {
		rd := cfg.ReorderDelay
		if rd <= 0 {
			rd = 20 * time.Millisecond
		}
		// Hold back long enough that closely-following packets overtake.
		d.ExtraDelay += rd/4 + time.Duration(ch.rng.Int64N(int64(3*rd/4)))
		if cfg.Stats != nil {
			cfg.Stats.Reordered.Add(1)
		}
	}
	if cfg.CorruptProb > 0 && ch.rng.Float64() < cfg.CorruptProb && len(d.Data) > 0 {
		c := append([]byte(nil), d.Data...)
		c[ch.rng.IntN(len(c))] ^= 1 << ch.rng.IntN(8)
		d.Data = c
		if cfg.Stats != nil {
			cfg.Stats.Corrupted.Add(1)
		}
	}
	if cfg.TruncateProb > 0 && cfg.TruncateMTU > 0 && len(d.Data) > cfg.TruncateMTU &&
		ch.rng.Float64() < cfg.TruncateProb {
		d.Data = append([]byte(nil), d.Data[:cfg.TruncateMTU]...)
		if cfg.Stats != nil {
			cfg.Stats.Truncated.Add(1)
		}
	}
	if cfg.Stats != nil {
		cfg.Stats.Delivered.Add(1)
	}
	out := []netsim.Delivery{d}
	if cfg.DupProb > 0 && ch.rng.Float64() < cfg.DupProb {
		dd := cfg.DupDelay
		if dd <= 0 {
			dd = 500 * time.Microsecond
		}
		// The duplicate gets its own backing array: the path mutates
		// TTLs in place and both copies travel independently.
		out = append(out, netsim.Delivery{
			Data:       append([]byte(nil), d.Data...),
			ExtraDelay: d.ExtraDelay + dd,
		})
		if cfg.Stats != nil {
			cfg.Stats.Duplicated.Add(1)
		}
	}
	return out
}

// lossProb evolves the direction's Gilbert–Elliott state to now and
// returns the current per-packet loss probability. The continuous-time
// chain has transition rates 1/MeanGood (good→bad) and 1/MeanBad
// (bad→good); over an elapsed dt the probability of being Bad relaxes
// toward the stationary πBad with rate constant (1/MeanGood +
// 1/MeanBad), so bursts persist across back-to-back packets but wash
// out across RTO-spaced retransmissions.
func (ch *Chain) lossProb(dir netsim.Direction, now netsim.Time) float64 {
	cfg := &ch.cfg
	if cfg.LossGood <= 0 && cfg.LossBad <= 0 {
		return 0
	}
	if cfg.MeanGood <= 0 || cfg.MeanBad <= 0 {
		return cfg.LossGood
	}
	st := &ch.ge[dir]
	lgb := 1 / cfg.MeanGood.Seconds() // good→bad rate
	lbg := 1 / cfg.MeanBad.Seconds()  // bad→good rate
	piBad := lgb / (lgb + lbg)
	var pBad float64
	if !st.init {
		// First packet: draw from the stationary distribution.
		st.init = true
		pBad = piBad
	} else {
		dt := time.Duration(now - st.last).Seconds()
		if dt < 0 {
			dt = 0
		}
		decay := math.Exp(-(lgb + lbg) * dt)
		if st.bad {
			pBad = piBad + (1-piBad)*decay
		} else {
			pBad = piBad * (1 - decay)
		}
	}
	st.bad = ch.rng.Float64() < pBad
	st.last = now
	if st.bad {
		return cfg.LossBad
	}
	return cfg.LossGood
}
