package faults

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestGradeTable(t *testing.T) {
	names := GradeNames()
	want := []string{"clean", "hostile", "lossy"}
	if len(names) != len(want) {
		t.Fatalf("GradeNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("GradeNames = %v, want %v", names, want)
		}
	}
	clean, err := Grade("clean")
	if err != nil || clean.Enabled() {
		t.Fatalf("clean grade: err=%v enabled=%v", err, clean.Enabled())
	}
	for _, n := range []string{"lossy", "hostile"} {
		g, err := Grade(n)
		if err != nil || !g.Enabled() {
			t.Fatalf("%s grade: err=%v enabled=%v", n, err, g.Enabled())
		}
		if g.Grade != n {
			t.Fatalf("%s grade carries name %q", n, g.Grade)
		}
	}
	if _, err := Grade("bogus"); err == nil {
		t.Fatal("unknown grade accepted")
	}
}

func TestEffectiveLossMatchesSimulation(t *testing.T) {
	cfg, _ := Grade("lossy")
	cfg.DupProb, cfg.ReorderProb, cfg.JitterMax, cfg.CorruptProb, cfg.TruncateProb = 0, 0, 0, 0, 0
	ch := NewChain(cfg, rand.New(rand.NewPCG(7, 11)))
	data := []byte{0x45}
	const n = 200000
	lost := 0
	now := netsim.Time(0)
	for i := 0; i < n; i++ {
		now += netsim.Time(2 * time.Millisecond) // steady 500 pps
		if len(ch.Hook(now, netsim.ClientToServer, data)) == 0 {
			lost++
		}
	}
	got := float64(lost) / n
	want := cfg.EffectiveLoss()
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("simulated loss %.4f, want ≈%.4f", got, want)
	}
}

// TestBurstCorrelation is the Gilbert–Elliott property itself: loss is
// correlated at packet spacing (bursts) but decorrelates at RTO
// spacing, which is what lets retransmissions escape a burst.
func TestBurstCorrelation(t *testing.T) {
	cfg, _ := Grade("lossy")
	cfg.DupProb, cfg.ReorderProb, cfg.JitterMax, cfg.CorruptProb, cfg.TruncateProb = 0, 0, 0, 0, 0

	condLoss := func(gap time.Duration) (pLoss, pLossAfterLoss float64) {
		ch := NewChain(cfg, rand.New(rand.NewPCG(42, 43)))
		data := []byte{0x45}
		const n = 400000
		losses, pairs, pairLosses := 0, 0, 0
		prevLost := false
		now := netsim.Time(0)
		for i := 0; i < n; i++ {
			now += netsim.Time(gap)
			lost := len(ch.Hook(now, netsim.ClientToServer, data)) == 0
			if lost {
				losses++
			}
			if prevLost {
				pairs++
				if lost {
					pairLosses++
				}
			}
			prevLost = lost
		}
		return float64(losses) / n, float64(pairLosses) / float64(pairs)
	}

	p, pAfter := condLoss(time.Millisecond)
	if pAfter < 4*p {
		t.Errorf("1ms spacing: P(loss|loss)=%.3f not ≫ P(loss)=%.3f — loss is not bursty", pAfter, p)
	}
	p, pAfter = condLoss(3 * time.Second)
	if pAfter > 2.5*p {
		t.Errorf("3s spacing: P(loss|loss)=%.3f vs P(loss)=%.3f — bursts should decorrelate at RTO spacing", pAfter, p)
	}
}

func TestHookDuplication(t *testing.T) {
	cfg := Config{DupProb: 1}
	ch := NewChain(cfg, rand.New(rand.NewPCG(1, 2)))
	data := []byte{1, 2, 3}
	out := ch.Hook(0, netsim.ClientToServer, data)
	if len(out) != 2 {
		t.Fatalf("DupProb=1 delivered %d copies, want 2", len(out))
	}
	if out[1].ExtraDelay <= out[0].ExtraDelay {
		t.Fatal("duplicate does not trail the original")
	}
	if &out[0].Data[0] == &out[1].Data[0] {
		t.Fatal("duplicate shares the original's backing array")
	}
}

func TestHookCorruptionBreaksChecksums(t *testing.T) {
	raw := buildPacket(t)
	cfg := Config{CorruptProb: 1}
	ch := NewChain(cfg, rand.New(rand.NewPCG(5, 6)))
	for i := 0; i < 100; i++ {
		out := ch.Hook(0, netsim.ServerToClient, append([]byte(nil), raw...))
		if len(out) != 1 {
			t.Fatal("corruption must not drop or duplicate")
		}
		// A flipped bit in the version nibble can make the packet
		// unparsable; either way it must not verify. (v6 flow-label
		// flips would be undetectable, but this packet is IPv4.)
		if packet.ChecksumsValid(out[0].Data) {
			t.Fatalf("iteration %d: corrupted packet still verifies", i)
		}
	}
}

func TestHookTruncation(t *testing.T) {
	raw := buildPacket(t)
	cfg := Config{TruncateProb: 1, TruncateMTU: 60}
	ch := NewChain(cfg, rand.New(rand.NewPCG(8, 9)))
	out := ch.Hook(0, netsim.ClientToServer, raw)
	if len(out) != 1 || len(out[0].Data) != 60 {
		t.Fatalf("truncation: got %d deliveries, len %d", len(out), len(out[0].Data))
	}
	if packet.ChecksumsValid(out[0].Data) {
		t.Fatal("truncated packet still verifies")
	}
	// Short packets pass untouched.
	small := buildPacketPayload(t, nil)
	if len(small) > 60 {
		t.Fatalf("test packet unexpectedly long: %d", len(small))
	}
	out = ch.Hook(0, netsim.ClientToServer, small)
	if len(out) != 1 || len(out[0].Data) != len(small) {
		t.Fatal("sub-MTU packet was modified")
	}
}

func TestHookJitterBounds(t *testing.T) {
	cfg := Config{JitterMax: 5 * time.Millisecond}
	ch := NewChain(cfg, rand.New(rand.NewPCG(3, 4)))
	for i := 0; i < 1000; i++ {
		out := ch.Hook(0, netsim.ClientToServer, []byte{0x45})
		if len(out) != 1 {
			t.Fatal("jitter must not drop")
		}
		if d := out[0].ExtraDelay; d < 0 || d >= 5*time.Millisecond {
			t.Fatalf("jitter %v out of [0, 5ms)", d)
		}
	}
}

func TestChainDeterminism(t *testing.T) {
	cfg, _ := Grade("hostile")
	run := func() []int64 {
		ch := NewChain(cfg, rand.New(rand.NewPCG(99, 100)))
		var trace []int64
		raw := buildPacket(t)
		now := netsim.Time(0)
		for i := 0; i < 5000; i++ {
			now += netsim.Time(777 * time.Microsecond)
			out := ch.Hook(now, netsim.Direction(i%2), append([]byte(nil), raw...))
			trace = append(trace, int64(len(out)))
			for _, d := range out {
				trace = append(trace, int64(d.ExtraDelay), int64(len(d.Data)))
			}
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func buildPacket(t *testing.T) []byte {
	return buildPacketPayload(t, make([]byte, 200))
}

func buildPacketPayload(t *testing.T, payload []byte) []byte {
	t.Helper()
	buf := packet.NewSerializeBuffer()
	opts := packet.SerializeOptions{FixLengths: true, ComputeChecksums: true}
	ip := packet.IPv4{
		TTL: 64, ID: 7, Protocol: 6,
		SrcIP: mustAddr("192.0.2.1"), DstIP: mustAddr("198.51.100.9"),
	}
	tcp := packet.TCP{SrcPort: 4000, DstPort: 443, Flags: packet.FlagsPSHACK, Window: 64240}
	tcp.SetNetworkLayerForChecksum(&ip)
	if err := packet.SerializeLayers(buf, opts, &ip, &tcp, packet.Payload(payload)); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}
