package faults

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/telemetry"
)

func TestStatsCountsEvents(t *testing.T) {
	cfg, err := Grade("hostile")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	cfg.Stats = &st
	// Crank the optional-event probabilities so every counter moves
	// within a modest packet budget.
	cfg.DupProb, cfg.ReorderProb, cfg.CorruptProb, cfg.TruncateProb = 0.3, 0.3, 0.3, 0.3
	ch := NewChain(cfg, rand.New(rand.NewPCG(1, 2)))

	const n = 4000
	pkt := make([]byte, 1400) // above TruncateMTU so truncation can fire
	now := netsim.Time(0)
	var hookDelivered int
	for i := 0; i < n; i++ {
		now += netsim.Time(200 * time.Microsecond)
		if out := ch.Hook(now, netsim.Direction(i%2), pkt); len(out) > 0 {
			hookDelivered++
		}
	}
	if got := st.Delivered.Load() + st.Lost.Load(); got != n {
		t.Fatalf("delivered %d + lost %d != %d hook calls", st.Delivered.Load(), st.Lost.Load(), n)
	}
	if int(st.Delivered.Load()) != hookDelivered {
		t.Fatalf("Delivered = %d, hook returned packets %d times", st.Delivered.Load(), hookDelivered)
	}
	for name, v := range map[string]int64{
		"lost":       st.Lost.Load(),
		"duplicated": st.Duplicated.Load(),
		"reordered":  st.Reordered.Load(),
		"corrupted":  st.Corrupted.Load(),
		"truncated":  st.Truncated.Load(),
	} {
		if v <= 0 {
			t.Errorf("event %s never counted", name)
		}
	}
}

func TestStatsNilSafe(t *testing.T) {
	cfg, _ := Grade("lossy")
	ch := NewChain(cfg, rand.New(rand.NewPCG(3, 4)))
	for i := 0; i < 100; i++ {
		ch.Hook(netsim.Time(i)*netsim.Time(time.Millisecond), 0, []byte{1, 2, 3})
	}
}

func TestStatsRegister(t *testing.T) {
	var st Stats
	st.Lost.Add(7)
	reg := telemetry.NewRegistry()
	st.Register(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := telemetry.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	if !strings.Contains(text, `tamperdetect_faults_events_total{event="lost"} 7`) {
		t.Fatalf("missing lost counter:\n%s", text)
	}
}
