package faults

import (
	"sync/atomic"

	"tamperdetect/internal/telemetry"
)

// Stats counts fault-injection events across every Chain built from a
// Config carrying the same *Stats. All fields are atomic: many
// simulated connections (and worker goroutines) share one Stats, so a
// live scrape or progress line can read totals mid-simulation.
//
// Delivered counts hook invocations whose packet survived (possibly
// mangled); the event counters are not mutually exclusive — one packet
// can be jittered, reordered, and duplicated.
type Stats struct {
	Delivered  atomic.Int64
	Lost       atomic.Int64
	Duplicated atomic.Int64
	Reordered  atomic.Int64
	Corrupted  atomic.Int64
	Truncated  atomic.Int64
}

// Register exposes the stats in reg as
// tamperdetect_faults_events_total{event=...} counters.
func (s *Stats) Register(reg *telemetry.Registry) {
	const name = "tamperdetect_faults_events_total"
	const help = "Fault-injection events across all impaired paths."
	for _, e := range []struct {
		label string
		v     *atomic.Int64
	}{
		{"delivered", &s.Delivered},
		{"lost", &s.Lost},
		{"duplicated", &s.Duplicated},
		{"reordered", &s.Reordered},
		{"corrupted", &s.Corrupted},
		{"truncated", &s.Truncated},
	} {
		v := e.v
		reg.CounterFunc(name, telemetry.Label("event", e.label), help, v.Load)
	}
}
