// Package capture implements the paper's data-collection pipeline with
// all four of its §3.2 constraints:
//
//  1. only inbound packets are logged;
//  2. timestamps have 1-second granularity, so packets may be recorded
//     out of order and order must be reconstructed from headers;
//  3. only the first MaxPackets (10) packets of a connection are kept;
//  4. connections are sampled uniformly (1 in Rate) by flow hash.
//
// The output — Connection records — is the classifier's input format.
// A binary file codec (codec.go) lets the cmd tools exchange captures.
package capture

import (
	"hash/maphash"
	"math/rand/v2"
	"net/netip"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
)

// PacketRecord is one logged inbound packet: exactly the header fields
// and truncated payload the paper's pipeline retains.
type PacketRecord struct {
	// Timestamp is whole seconds since scenario start (1 s granularity
	// per §3.2).
	Timestamp int64
	Flags     packet.TCPFlags
	Seq       uint32
	Ack       uint32
	IPID      uint16
	TTL       uint8
	Window    uint16
	// PayloadLen is the original payload length; Payload holds at most
	// MaxPayload captured bytes of it.
	PayloadLen int
	Payload    []byte
	HasOptions bool
}

// Connection is one sampled connection's inbound record.
type Connection struct {
	SrcIP     netip.Addr
	DstIP     netip.Addr
	SrcPort   uint16
	DstPort   uint16
	IPVersion int

	// Packets holds up to MaxPackets records in logging order (which
	// may differ from arrival order within a second).
	Packets []PacketRecord
	// TotalPackets counts every inbound packet including unrecorded
	// ones beyond the cap.
	TotalPackets int
	// LastActivity is the 1-second timestamp of the last inbound
	// packet, recorded or not.
	LastActivity int64
	// CloseTime is when the collection window for this connection
	// ended (sampler drain time), for trailing-silence measurement.
	CloseTime int64
}

// Key identifies the connection's flow.
func (c *Connection) Key() FlowKey {
	return FlowKey{Src: c.SrcIP, Dst: c.DstIP, SrcPort: c.SrcPort, DstPort: c.DstPort}
}

// FlowKey is the 4-tuple of the client→server direction.
type FlowKey struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
}

// Config tunes the sampler.
type Config struct {
	// Rate samples 1 in Rate connections (1 records everything; the
	// paper's deployment uses 10 000).
	Rate uint64
	// MaxPackets caps recorded packets per connection (paper: 10).
	MaxPackets int
	// MaxPayload caps captured payload bytes per packet.
	MaxPayload int
	// ShuffleWithinSecond randomizes logging order among packets that
	// share a timestamp, reproducing constraint 2; nil disables.
	ShuffleWithinSecond *rand.Rand
	// VerifyChecksums drops inbound packets whose IP/TCP checksums do
	// not verify, as the deployment's kernel tap would never surface
	// them. Enable when the feed can carry corrupted-in-flight packets
	// (e.g. simulations with bit-corruption impairments).
	VerifyChecksums bool
}

// DefaultConfig is the paper's deployment configuration, except Rate=1:
// scenario generators emit the sampled population directly (see
// DESIGN.md), and the ablation benches re-enable 1-in-10k sampling.
func DefaultConfig() Config {
	return Config{Rate: 1, MaxPackets: 10, MaxPayload: 512}
}

// Sampler ingests inbound packets at the server tap and accumulates
// sampled connection records.
type Sampler struct {
	cfg    Config
	seed   maphash.Seed
	parser *packet.SummaryParser
	flows  map[FlowKey]*Connection
	order  []FlowKey // insertion order for deterministic drains

	// Stats.
	SeenPackets    int
	SampledPackets int
}

// NewSampler builds a sampler.
func NewSampler(cfg Config) *Sampler {
	if cfg.Rate == 0 {
		cfg.Rate = 1
	}
	if cfg.MaxPackets == 0 {
		cfg.MaxPackets = 10
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = 512
	}
	return &Sampler{
		cfg:    cfg,
		seed:   maphash.MakeSeed(),
		parser: packet.NewSummaryParser(),
		flows:  make(map[FlowKey]*Connection),
	}
}

// Inbound ingests one inbound packet; use it as a netsim path tap.
func (s *Sampler) Inbound(at netsim.Time, data []byte) {
	if s.cfg.VerifyChecksums && !packet.ChecksumsValid(data) {
		return
	}
	var sum packet.Summary
	if err := s.parser.Parse(data, &sum); err != nil {
		return
	}
	s.SeenPackets++
	key := FlowKey{Src: sum.SrcIP, Dst: sum.DstIP, SrcPort: sum.SrcPort, DstPort: sum.DstPort}
	conn, tracked := s.flows[key]
	if !tracked {
		// New flows are admitted only on their SYN and only when the
		// flow hash selects them; mid-flow packets of unsampled
		// connections are ignored, as in the deployment.
		if !sum.Flags.Has(packet.FlagSYN) || sum.Flags.Has(packet.FlagACK) {
			return
		}
		if !s.selected(key) {
			return
		}
		conn = &Connection{
			SrcIP: sum.SrcIP, DstIP: sum.DstIP,
			SrcPort: sum.SrcPort, DstPort: sum.DstPort,
			IPVersion: sum.IPVersion,
		}
		s.flows[key] = conn
		s.order = append(s.order, key)
	}
	ts := at.Unix()
	conn.TotalPackets++
	conn.LastActivity = ts
	if len(conn.Packets) >= s.cfg.MaxPackets {
		return
	}
	s.SampledPackets++
	rec := PacketRecord{
		Timestamp:  ts,
		Flags:      sum.Flags,
		Seq:        sum.Seq,
		Ack:        sum.Ack,
		IPID:       sum.IPID,
		TTL:        sum.TTL,
		Window:     sum.Window,
		PayloadLen: sum.PayloadLen,
		HasOptions: sum.HasOptions,
	}
	if n := sum.PayloadLen; n > 0 {
		if n > s.cfg.MaxPayload {
			n = s.cfg.MaxPayload
		}
		rec.Payload = append([]byte(nil), sum.Payload[:n]...)
	}
	if rng := s.cfg.ShuffleWithinSecond; rng != nil && len(conn.Packets) > 0 {
		// Insert at a random position among records of the same second,
		// modelling the unordered log.
		lo := len(conn.Packets)
		for lo > 0 && conn.Packets[lo-1].Timestamp == ts {
			lo--
		}
		pos := lo + rng.IntN(len(conn.Packets)-lo+1)
		conn.Packets = append(conn.Packets, PacketRecord{})
		copy(conn.Packets[pos+1:], conn.Packets[pos:])
		conn.Packets[pos] = rec
		return
	}
	conn.Packets = append(conn.Packets, rec)
}

// selected applies the deterministic uniform flow-hash sampling.
func (s *Sampler) selected(key FlowKey) bool {
	if s.cfg.Rate <= 1 {
		return true
	}
	var h maphash.Hash
	h.SetSeed(s.seed)
	b := key.Src.As16()
	h.Write(b[:])
	b = key.Dst.As16()
	h.Write(b[:])
	h.WriteByte(byte(key.SrcPort >> 8))
	h.WriteByte(byte(key.SrcPort))
	h.WriteByte(byte(key.DstPort >> 8))
	h.WriteByte(byte(key.DstPort))
	return h.Sum64()%s.cfg.Rate == 0
}

// DrainIdle closes and returns connections whose last activity is at
// least idleSeconds old, keeping active flows tracked. Long-running
// deployments call it periodically to bound memory; the returned
// records have CloseTime set to now.
func (s *Sampler) DrainIdle(now netsim.Time, idleSeconds int64) []*Connection {
	ts := now.Unix()
	var out []*Connection
	keep := s.order[:0]
	for _, key := range s.order {
		conn := s.flows[key]
		if ts-conn.LastActivity >= idleSeconds {
			conn.CloseTime = ts
			out = append(out, conn)
			delete(s.flows, key)
			continue
		}
		keep = append(keep, key)
	}
	s.order = keep
	return out
}

// Drain closes all tracked connections at the given time and returns
// them in admission order, resetting the sampler.
func (s *Sampler) Drain(closeAt netsim.Time) []*Connection {
	out := make([]*Connection, 0, len(s.flows))
	ts := closeAt.Unix()
	for _, key := range s.order {
		conn := s.flows[key]
		conn.CloseTime = ts
		out = append(out, conn)
	}
	s.flows = make(map[FlowKey]*Connection)
	s.order = nil
	return out
}

// Pending reports the number of open connection records.
func (s *Sampler) Pending() int { return len(s.flows) }
