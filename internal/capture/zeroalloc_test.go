package capture

import (
	"bytes"
	"io"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"

	"tamperdetect/internal/packet"
)

// encodeConns serializes conns into a TDCAP byte stream.
func encodeConns(t testing.TB, conns []*Connection) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestNextIntoMatchesNext decodes the same stream through Next and
// NextInto and requires identical records, counts, and sticky EOF.
func TestNextIntoMatchesNext(t *testing.T) {
	var conns []*Connection
	for i := 0; i < 32; i++ {
		c := sampleConn(i%3 == 0)
		c.SrcPort = uint16(2000 + i)
		if i%5 == 0 {
			c.Packets = nil // zero-packet records must round-trip too
		}
		conns = append(conns, c)
	}
	data := encodeConns(t, conns)

	ra := NewReader(bytes.NewReader(data))
	rb := NewReader(bytes.NewReader(data))
	var scratch Connection
	for i := range conns {
		want, err := ra.Next()
		if err != nil {
			t.Fatalf("Next #%d: %v", i, err)
		}
		if err := rb.NextInto(&scratch); err != nil {
			t.Fatalf("NextInto #%d: %v", i, err)
		}
		// Normalise nil-vs-empty Packets before comparing: NextInto
		// reuses capacity, so an empty record keeps a non-nil slice.
		got := scratch
		if len(got.Packets) == 0 && len(want.Packets) == 0 {
			got.Packets, want.Packets = nil, nil
		}
		for j := range got.Packets {
			if len(got.Packets[j].Payload) == 0 && len(want.Packets[j].Payload) == 0 {
				got.Packets[j].Payload, want.Packets[j].Payload = nil, nil
			}
		}
		if !reflect.DeepEqual(&got, want) {
			t.Fatalf("record %d mismatch:\n got: %+v\nwant: %+v", i, &got, want)
		}
	}
	if err := rb.NextInto(&scratch); err != io.EOF {
		t.Fatalf("NextInto past end: %v, want io.EOF", err)
	}
	if err := rb.NextInto(&scratch); err != io.EOF {
		t.Fatalf("NextInto sticky EOF lost: %v", err)
	}
	if rb.Count() != len(conns) {
		t.Errorf("Count = %d, want %d", rb.Count(), len(conns))
	}
}

// TestReadRecordsAreRetainSafe verifies the slab contract: records
// returned by Read/Next stay intact while later records decode.
func TestReadRecordsAreRetainSafe(t *testing.T) {
	const n = 3 * connSlabSize // span several slabs
	var conns []*Connection
	for i := 0; i < n; i++ {
		c := sampleConn(false)
		c.SrcPort = uint16(i)
		c.Packets[1].Payload = []byte{byte(i), byte(i >> 8), 0xAA}
		c.Packets[1].PayloadLen = 3
		conns = append(conns, c)
	}
	r := NewReader(bytes.NewReader(encodeConns(t, conns)))
	var got []*Connection
	for {
		c, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, c)
	}
	if len(got) != n {
		t.Fatalf("decoded %d records, want %d", len(got), n)
	}
	for i, c := range got {
		if c.SrcPort != uint16(i) {
			t.Fatalf("record %d srcPort = %d (slab slot overwritten?)", i, c.SrcPort)
		}
		if want := []byte{byte(i), byte(i >> 8), 0xAA}; !bytes.Equal(c.Packets[1].Payload, want) {
			t.Fatalf("record %d payload = %v, want %v", i, c.Packets[1].Payload, want)
		}
	}
}

// TestNextIntoSteadyStateAllocs pins the zero-allocation contract:
// after warm-up, NextInto must not allocate per record.
func TestNextIntoSteadyStateAllocs(t *testing.T) {
	var conns []*Connection
	for i := 0; i < 64; i++ {
		conns = append(conns, sampleConn(false))
	}
	data := encodeConns(t, conns)
	r := NewReader(bytes.NewReader(data))
	var c Connection
	// Warm-up: first records size the Packets slice and payload slots.
	for i := 0; i < 4; i++ {
		if err := r.NextInto(&c); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(32, func() {
		if err := r.NextInto(&c); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("NextInto steady state: %.1f allocs/record, want 0", allocs)
	}
}

// TestReadAmortisedAllocs bounds the slab path: decoding a large
// stream through Read must cost well under one allocation per record
// beyond the records themselves.
func TestReadAmortisedAllocs(t *testing.T) {
	const n = 512
	var conns []*Connection
	for i := 0; i < n; i++ {
		conns = append(conns, sampleConn(false))
	}
	data := encodeConns(t, conns)
	var sink *Connection
	allocs := testing.AllocsPerRun(4, func() {
		r := NewReader(bytes.NewReader(data))
		for {
			c, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			sink = c
		}
	})
	_ = sink
	perRecord := allocs / n
	if perRecord > 0.5 {
		t.Errorf("Read slab path: %.2f allocs/record, want amortised < 0.5", perRecord)
	}
}

// randomRecord builds a packet list that stresses every ordering rule.
func randomRecord(rng *rand.Rand, n int) []PacketRecord {
	recs := make([]PacketRecord, n)
	flagChoices := []packet.TCPFlags{
		packet.FlagsSYN, packet.FlagsSYNACK, packet.FlagACK,
		packet.FlagsPSHACK, packet.FlagsFINACK, packet.FlagsRSTACK, packet.FlagRST,
	}
	for i := range recs {
		recs[i] = PacketRecord{
			Timestamp:  int64(rng.IntN(4)),
			Flags:      flagChoices[rng.IntN(len(flagChoices))],
			Seq:        1000 + uint32(rng.IntN(5))*100,
			PayloadLen: rng.IntN(2) * 100,
		}
	}
	return recs
}

// TestReconstructIntoMatchesReferenceSort checks both the insertion
// path (small n) and the SliceStable fallback (n > insertionSortMax)
// against a reference stable sort, and verifies dst reuse.
func TestReconstructIntoMatchesReferenceSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 17))
	var dst []PacketRecord
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(12)
		if trial%10 == 0 {
			n = insertionSortMax + 1 + rng.IntN(40) // exercise the fallback
		}
		c := &Connection{Packets: randomRecord(rng, n)}

		// Reference: the pre-optimisation implementation, verbatim.
		ref := append([]PacketRecord(nil), c.Packets...)
		var isn uint32
		found := false
		for _, p := range ref {
			if p.Flags.Has(packet.FlagSYN) {
				isn = p.Seq
				found = true
				break
			}
		}
		if !found {
			isn = ref[0].Seq
			for _, p := range ref[1:] {
				if int32(p.Seq-isn) < 0 {
					isn = p.Seq
				}
			}
		}
		sort.SliceStable(ref, func(i, j int) bool {
			a, b := &ref[i], &ref[j]
			if a.Timestamp != b.Timestamp {
				return a.Timestamp < b.Timestamp
			}
			ra, rb := rankOf(a, isn), rankOf(b, isn)
			return ra < rb
		})

		dst = ReconstructInto(c, dst)
		if !reflect.DeepEqual(dst, ref) {
			t.Fatalf("trial %d (n=%d): ReconstructInto diverges from reference\n got: %+v\nwant: %+v",
				trial, n, dst, ref)
		}
	}
}

// TestReconstructIntoReusesDst pins the no-allocation reorder loop.
func TestReconstructIntoReusesDst(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	c := &Connection{Packets: randomRecord(rng, 10)}
	dst := make([]PacketRecord, 0, 16)
	allocs := testing.AllocsPerRun(64, func() {
		dst = ReconstructInto(c, dst)
	})
	if allocs > 0 {
		t.Errorf("ReconstructInto with sized dst: %.1f allocs, want 0", allocs)
	}
}
