package capture

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// Edge inputs the segment seams hit in practice: empty files,
// zero-record captures, concatenated captures (a footer or repeated
// file magic mid-stream), and indexes that point outside the data they
// describe. Both streaming front ends must agree on all of them.

func TestScannerEmptyInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty file":           {},
		"magic only":           []byte("TDCAP001"),
		"indexed zero records": encodeIndexedConns(t, nil, 4),
		"two empty captures":   []byte("TDCAP001TDCAP001"),
		"empty then indexed":   append([]byte("TDCAP001"), encodeIndexedConns(t, nil, 4)...),
	}
	for name, data := range cases {
		rn, rc := driveReader(data)
		sn, sc := driveScanner(data)
		if rn != 0 || sn != 0 || rc != "eof" || sc != "eof" {
			t.Errorf("%s: reader (%d, %s), scanner (%d, %s), want clean EOF with 0 records",
				name, rn, rc, sn, sc)
		}
	}
}

// TestConcatenatedCaptures: `cat a.tdcap b.tdcap` is a valid stream —
// the repeated magic (and a.tdcap's footer, when indexed) is skipped
// at the record boundary, and both front ends see all records of both
// files in order.
func TestConcatenatedCaptures(t *testing.T) {
	conns := scannerConns(t)
	a := encodeConns(t, conns[:2])
	b := encodeConns(t, conns[2:])
	ai := encodeIndexedConns(t, conns[:2], 1)
	bi := encodeIndexedConns(t, conns[2:], 1)
	cases := map[string][]byte{
		"plain+plain":     append(append([]byte(nil), a...), b...),
		"indexed+plain":   append(append([]byte(nil), ai...), b...),
		"plain+indexed":   append(append([]byte(nil), a...), bi...),
		"indexed+indexed": append(append([]byte(nil), ai...), bi...),
	}
	for name, data := range cases {
		rn, rc := driveReader(data)
		sn, sc := driveScanner(data)
		if rn != len(conns) || sn != len(conns) || rc != "eof" || sc != "eof" {
			t.Errorf("%s: reader (%d, %s), scanner (%d, %s), want %d records",
				name, rn, rc, sn, sc, len(conns))
			continue
		}
		// Record-level parity with the single-file scans.
		r := NewReader(bytes.NewReader(data))
		for i := range conns {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("%s: record %d: %v", name, i, err)
			}
			if !connEqual(conns[i], got) {
				t.Errorf("%s: record %d differs from source", name, i)
			}
		}
		// A sidecar built over the concatenation shards it like any
		// other capture: byte parity between segmented and single scan.
		idx, err := BuildIndex(bytes.NewReader(data), 2)
		if err != nil {
			t.Fatalf("%s: BuildIndex: %v", name, err)
		}
		idx.FileSize = int64(len(data))
		src, err := NewSegmentedSource(bytes.NewReader(data), int64(len(data)), idx, 3)
		if err != nil {
			t.Fatalf("%s: NewSegmentedSource: %v", name, err)
		}
		want, _, werr := scanAllRecords(data)
		got, _, gerr := scanSegments(src)
		if werr != nil || gerr != nil || !bytes.Equal(want, got) {
			t.Errorf("%s: sharded scan over concatenation diverges (%v, %v)", name, werr, gerr)
		}
	}
}

// TestIndexPastEOF: a checksum-valid index whose offsets or data size
// reach beyond the file must be rejected eagerly (stale) — and if the
// data size is shrunk to fit, the seam checks catch it at scan time.
func TestIndexPastEOF(t *testing.T) {
	plain := encodeConns(t, scannerConns(t))
	idx, err := BuildIndex(bytes.NewReader(plain), 1)
	if err != nil {
		t.Fatal(err)
	}
	beyond := *idx
	beyond.Offsets = append([]int64(nil), idx.Offsets...)
	beyond.DataSize = int64(len(plain)) + 100
	beyond.Offsets[len(beyond.Offsets)-1] = int64(len(plain)) + 50
	if _, err := NewSegmentedSource(bytes.NewReader(plain), int64(len(plain)), &beyond, 4); err == nil {
		t.Fatal("index pointing past EOF accepted")
	} else if !errors.Is(err, ErrStaleIndex) && !errors.Is(err, ErrBadIndex) {
		t.Fatalf("index past EOF: %v, want ErrStaleIndex/ErrBadIndex", err)
	}
	// Segment whose section reader ends mid-record (DataSize overhangs
	// by one whole record): the last shard must hit ErrCorrupt or a
	// seam-check failure, never return a half record.
	overhang := *idx
	overhang.Offsets = idx.Offsets[:len(idx.Offsets)-1]
	overhang.Records = idx.Records - 1
	overhang.DataSize = idx.Offsets[len(idx.Offsets)-1]
	src, err := NewSegmentedSource(bytes.NewReader(plain[:overhang.DataSize-2]), overhang.DataSize-2, &overhang, 2)
	if err == nil {
		if _, _, err = scanSegments(src); err == nil {
			t.Fatal("mid-record segment end scanned cleanly")
		}
	}
	if err != nil && !errors.Is(err, ErrStaleIndex) && !errors.Is(err, ErrBadIndex) &&
		!errors.Is(err, ErrCorrupt) {
		t.Fatalf("unexpected error class: %v", err)
	}
}

// TestScannerStopsAtSectionEnd pins the seam re-validation mechanism
// itself: a mid-stream scanner over a byte range that cuts a record in
// half must return ErrCorrupt (the record runs off the section), and
// one over a range that ends exactly on a boundary returns clean EOF
// with the exact consumed offset.
func TestScannerStopsAtSectionEnd(t *testing.T) {
	indexed := encodeIndexedConns(t, scannerConns(t), 1)
	idx, err := ReadFooterIndex(bytes.NewReader(indexed), int64(len(indexed)))
	if err != nil {
		t.Fatal(err)
	}
	ra := bytes.NewReader(indexed)
	// Exact boundary: records 1..2.
	start, end := idx.Offsets[1], idx.Offsets[3]
	sc := newScannerAt(io.NewSectionReader(ra, start, end-start), start)
	n := 0
	for {
		_, err := sc.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		n++
	}
	if n != 2 || sc.Offset() != end {
		t.Fatalf("section scan: %d records ending at %d, want 2 ending at %d", n, sc.Offset(), end)
	}
	// Mid-record cut: same range short one byte.
	sc = newScannerAt(io.NewSectionReader(ra, start, end-start-1), start)
	var lastErr error
	for {
		_, err := sc.Next(nil)
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrCorrupt) {
		t.Fatalf("mid-record section end: %v, want ErrCorrupt", lastErr)
	}
}
