package capture

import (
	"bytes"
	"io"
	"net/netip"
	"reflect"
	"testing"

	"tamperdetect/internal/packet"
)

func sampleConn(v6 bool) *Connection {
	src := netip.MustParseAddr("20.1.2.3")
	dst := netip.MustParseAddr("192.0.2.80")
	ipver := 4
	if v6 {
		src = netip.MustParseAddr("2600:1::5")
		dst = netip.MustParseAddr("2600:2::80")
		ipver = 6
	}
	return &Connection{
		SrcIP: src, DstIP: dst, SrcPort: 40000, DstPort: 443, IPVersion: ipver,
		TotalPackets: 12, LastActivity: 99, CloseTime: 130,
		Packets: []PacketRecord{
			{Timestamp: 90, Flags: packet.FlagsSYN, Seq: 7, IPID: 54321, TTL: 44, Window: 64240, HasOptions: true},
			{Timestamp: 91, Flags: packet.FlagsPSHACK, Seq: 8, Ack: 55, PayloadLen: 300, Payload: []byte("\x16\x03\x01 hello"), TTL: 44},
			{Timestamp: 91, Flags: packet.FlagsRSTACK, Seq: 308, Ack: 55, IPID: 9999, TTL: 201},
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, v6 := range []bool{false, true} {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		in := sampleConn(v6)
		if err := w.Write(in); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		r := NewReader(&buf)
		out, err := r.Read()
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("v6=%v round trip mismatch:\n in: %+v\nout: %+v", v6, in, out)
		}
		if _, err := r.Read(); err != io.EOF {
			t.Errorf("want EOF after last record, got %v", err)
		}
	}
}

func TestCodecMultipleRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		c := sampleConn(i%2 == 0)
		c.SrcPort = uint16(1000 + i)
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("records = %d, want 5", len(got))
	}
	for i, c := range got {
		if c.SrcPort != uint16(1000+i) {
			t.Errorf("record %d srcPort = %d", i, c.SrcPort)
		}
	}
}

func TestCodecEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil || len(got) != 0 {
		t.Errorf("empty capture: %v records, err %v", len(got), err)
	}
}

func TestCodecBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTMAGIC plus data")))
	if _, err := r.Read(); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleConn(false)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Any truncation mid-record must error (or EOF at boundaries), not panic.
	for cut := 9; cut < len(full)-1; cut += 7 {
		r := NewReader(bytes.NewReader(full[:cut]))
		_, err := r.Read()
		if err == nil {
			t.Fatalf("truncation at %d silently succeeded", cut)
		}
	}
}

func TestCodecGarbageMarker(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(captureMagic[:])
	buf.WriteByte(0xFF)
	if _, err := NewReader(&buf).Read(); err == nil {
		t.Error("garbage marker accepted")
	}
}

func TestReaderNext(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(sampleConn(i%2 == 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i := 0; i < 3; i++ {
		c, err := r.Next()
		if err != nil {
			t.Fatalf("Next #%d: %v", i, err)
		}
		if c == nil {
			t.Fatalf("Next #%d returned nil connection", i)
		}
		if r.Count() != i+1 {
			t.Errorf("Count after #%d = %d, want %d", i, r.Count(), i+1)
		}
	}
	// EOF is sticky too: every further call keeps returning io.EOF.
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("Next past end: %v, want io.EOF", err)
		}
	}
	if r.Count() != 3 {
		t.Errorf("final Count = %d, want 3", r.Count())
	}
}

func TestReaderBytesRead(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(sampleConn(true)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	total := int64(buf.Len())
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if r.BytesRead() != 0 {
		t.Fatalf("BytesRead before decoding = %d", r.BytesRead())
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	// bufio reads ahead, so after one record the counter is somewhere
	// in (0, total]; after draining it must equal the stream size.
	if got := r.BytesRead(); got <= 0 || got > total {
		t.Fatalf("BytesRead after one record = %d, want (0, %d]", got, total)
	}
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if got := r.BytesRead(); got != total {
		t.Fatalf("BytesRead after drain = %d, want %d", got, total)
	}
}

func TestReaderNextStickyError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleConn(false)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// One good record, then a corrupt tail.
	data := append(append([]byte(nil), full...), connMarker, 0x07)
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	_, err := r.Next()
	if err == nil {
		t.Fatal("corrupt record accepted")
	}
	// The error must repeat identically instead of re-reading the
	// stream past the corruption.
	for i := 0; i < 2; i++ {
		if _, again := r.Next(); again != err {
			t.Fatalf("sticky error lost: %v then %v", err, again)
		}
	}
	if r.Count() != 1 {
		t.Errorf("Count = %d, want 1", r.Count())
	}
}

// TestCodecCorruptLengthPrefixes is the untrusted-input bound: a forged
// or bit-flipped length prefix must yield ErrCorrupt quickly, never a
// giant allocation or a hang waiting for bytes that don't exist.
func TestCodecCorruptLengthPrefixes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(sampleConn(false)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Locate the 2-byte packet-count field: magic(8) marker(1) ipver(1)
	// src(4) dst(4) ports(4) total(4) last(8) close(8).
	countOff := 8 + 1 + 1 + 4 + 4 + 4 + 4 + 8 + 8
	overCount := append([]byte(nil), full...)
	overCount[countOff] = 0xFF
	overCount[countOff+1] = 0xFF
	if _, err := NewReader(bytes.NewReader(overCount)).Read(); err == nil {
		t.Error("packet count 0xFFFF accepted")
	}

	// Claim many packets but supply none: the reader must fail on the
	// missing bytes, not pre-commit memory for the claimed count.
	claimed := append([]byte(nil), full[:countOff]...)
	claimed = append(claimed, 0x3F, 0xFF) // 16383 packets, within the cap
	if _, err := NewReader(bytes.NewReader(claimed)).Read(); err == nil {
		t.Error("claimed packets with empty body accepted")
	}

	// Captured length beyond the original payload length is impossible
	// for a writer-produced record — reject it.
	// Packet record layout after count: ts(8) flags(1) seq(4) ack(4)
	// ipid(2) ttl(1) window(2) payloadLen(4) capLen(2).
	pktOff := countOff + 2
	capOff := pktOff + 8 + 1 + 4 + 4 + 2 + 1 + 2 + 4
	overCap := append([]byte(nil), full...)
	overCap[capOff] = 0xFF // first packet has PayloadLen 0
	overCap[capOff+1] = 0xFF
	if _, err := NewReader(bytes.NewReader(overCap)).Read(); err == nil {
		t.Error("captured length > payload length accepted")
	}
}

func TestWriterRejectsOversizeRecords(t *testing.T) {
	w := NewWriter(io.Discard)
	big := sampleConn(false)
	big.Packets = make([]PacketRecord, maxPacketsPerRecord+1)
	if err := w.Write(big); err == nil {
		t.Error("oversize packet count written")
	}
	fat := sampleConn(false)
	fat.Packets[1].Payload = make([]byte, maxCapturedPayload+1)
	fat.Packets[1].PayloadLen = maxCapturedPayload + 1
	if err := w.Write(fat); err == nil {
		t.Error("oversize captured payload written")
	}
}
