package capture

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"

	"tamperdetect/internal/packet"
)

// scannerConns builds a diverse multi-record capture: both IP
// versions, empty and multi-packet records, payloads of assorted
// sizes, options flags, and the full TCP flag range — everything the
// scanner's header walk must step over correctly.
func scannerConns(t *testing.T) []*Connection {
	t.Helper()
	mk := func(v6 bool, pkts ...PacketRecord) *Connection {
		c := &Connection{
			SrcIP: netip.MustParseAddr("20.1.2.3"), DstIP: netip.MustParseAddr("192.0.2.80"),
			SrcPort: 40000, DstPort: 443, IPVersion: 4,
			TotalPackets: len(pkts), LastActivity: 99, CloseTime: 130,
			Packets: pkts,
		}
		if v6 {
			c.SrcIP = netip.MustParseAddr("2600:1::5")
			c.DstIP = netip.MustParseAddr("2600:2::80")
			c.IPVersion = 6
		}
		return c
	}
	big := bytes.Repeat([]byte{0xAB}, 1200)
	return []*Connection{
		mk(false,
			PacketRecord{Timestamp: 1, Flags: packet.FlagsSYN, Seq: 7, IPID: 54321, TTL: 44, Window: 64240, HasOptions: true},
			PacketRecord{Timestamp: 2, Flags: packet.FlagsPSHACK, Seq: 8, Ack: 55, PayloadLen: 300, Payload: []byte("\x16\x03\x01 hello"), TTL: 44},
			PacketRecord{Timestamp: 3, Flags: packet.FlagsRSTACK, Seq: 308, Ack: 55, IPID: 9999, TTL: 201},
		),
		mk(true,
			PacketRecord{Timestamp: 10, Flags: packet.FlagsSYN, Seq: 1},
			PacketRecord{Timestamp: 11, Flags: packet.FlagsPSHACK, Seq: 2, PayloadLen: 1200, Payload: big},
		),
		mk(false), // zero packets
		mk(true, PacketRecord{Timestamp: 20, Flags: packet.FlagsRST, Ack: 0xFFFFFFFF}),
		mk(false,
			PacketRecord{Timestamp: 30, Flags: packet.FlagFIN | packet.FlagACK | packet.FlagURG, PayloadLen: 1, Payload: []byte{0}},
			PacketRecord{Timestamp: 31, Flags: 0xFF, PayloadLen: 5}, // capLen 0 < payloadLen
		),
	}
}

// connEqual compares field-wise, treating nil and empty payloads as
// equal (Reader leaves zero-length payloads nil; DecodeRecord may
// reuse capacity and reslice to zero).
func connEqual(a, b *Connection) bool {
	if a.SrcIP != b.SrcIP || a.DstIP != b.DstIP || a.SrcPort != b.SrcPort ||
		a.DstPort != b.DstPort || a.IPVersion != b.IPVersion ||
		a.TotalPackets != b.TotalPackets || a.LastActivity != b.LastActivity ||
		a.CloseTime != b.CloseTime || len(a.Packets) != len(b.Packets) {
		return false
	}
	for i := range a.Packets {
		pa, pb := &a.Packets[i], &b.Packets[i]
		if !bytes.Equal(pa.Payload, pb.Payload) ||
			pa.Timestamp != pb.Timestamp || pa.Flags != pb.Flags ||
			pa.Seq != pb.Seq || pa.Ack != pb.Ack || pa.IPID != pb.IPID ||
			pa.TTL != pb.TTL || pa.Window != pb.Window ||
			pa.PayloadLen != pb.PayloadLen || pa.HasOptions != pb.HasOptions {
			return false
		}
	}
	return true
}

// TestScannerMatchesReader: Scanner.Next + DecodeRecord must
// reproduce the Reader's connections exactly, record for record, over
// repeated slab and Connection reuse.
func TestScannerMatchesReader(t *testing.T) {
	conns := scannerConns(t)
	data := encodeConns(t, conns)

	r := NewReader(bytes.NewReader(data))
	sc := NewScanner(bytes.NewReader(data))
	var slab []byte
	var reused Connection // DecodeRecord target, reused across records
	for i := 0; ; i++ {
		want, rerr := r.Next()
		raw, serr := sc.Next(slab[:0])
		if rerr == io.EOF || serr == io.EOF {
			if rerr != serr {
				t.Fatalf("record %d: reader err %v, scanner err %v", i, rerr, serr)
			}
			break
		}
		if rerr != nil || serr != nil {
			t.Fatalf("record %d: reader err %v, scanner err %v", i, rerr, serr)
		}
		slab = raw
		if err := DecodeRecord(raw, &reused); err != nil {
			t.Fatalf("record %d: DecodeRecord: %v", i, err)
		}
		if !connEqual(want, &reused) {
			t.Errorf("record %d mismatch:\nreader:  %+v\nscanner: %+v", i, want, &reused)
		}
		if !connEqual(conns[i], &reused) {
			t.Errorf("record %d does not match original: %+v", i, &reused)
		}
	}
	if sc.Count() != len(conns) || r.Count() != len(conns) {
		t.Errorf("counts: scanner %d, reader %d, want %d", sc.Count(), r.Count(), len(conns))
	}
	if sc.BytesRead() != int64(len(data)) {
		t.Errorf("BytesRead = %d, want %d", sc.BytesRead(), len(data))
	}
}

// errClass buckets an error the way the pipeline's exit codes do.
func errClass(err error) string {
	switch {
	case err == nil:
		return "nil"
	case err == io.EOF:
		return "eof"
	case errors.Is(err, ErrBadMagic):
		return "badmagic"
	case errors.Is(err, ErrCorrupt):
		return "corrupt"
	default:
		return "other"
	}
}

// drive runs one front end over data, returning how many records it
// produced before its terminal error, and the class of that error.
func driveReader(data []byte) (int, string) {
	r := NewReader(bytes.NewReader(data))
	for {
		if _, err := r.Next(); err != nil {
			return r.Count(), errClass(err)
		}
	}
}

func driveScanner(data []byte) (int, string) {
	sc := NewScanner(bytes.NewReader(data))
	var c Connection
	for {
		raw, err := sc.Next(nil)
		if err != nil {
			return sc.Count(), errClass(err)
		}
		if err := DecodeRecord(raw, &c); err != nil {
			// Scanner-approved bytes must always decode.
			return sc.Count(), "decode-failed:" + err.Error()
		}
	}
}

// TestScannerTruncationParity truncates a valid capture at every
// length: the scanner must deliver the same record count and the same
// terminal error class as the Reader, which is what pins tamperscan's
// exit-3 "good prefix then corrupt tail" behaviour to the new path.
func TestScannerTruncationParity(t *testing.T) {
	data := encodeConns(t, scannerConns(t))
	for cut := 0; cut <= len(data); cut++ {
		rn, rc := driveReader(data[:cut])
		sn, sclass := driveScanner(data[:cut])
		if rn != sn || rc != sclass {
			t.Fatalf("truncation at %d/%d: reader (%d records, %s), scanner (%d records, %s)",
				cut, len(data), rn, rc, sn, sclass)
		}
	}
}

// TestScannerCorruptionParity flips each byte of a valid capture to a
// hostile value and checks count + error-class parity. (Not all
// corruptions are detectable — flipping a TTL yields a different
// valid capture — but both front ends must fail, or not, identically.)
func TestScannerCorruptionParity(t *testing.T) {
	data := encodeConns(t, scannerConns(t))
	for pos := 0; pos < len(data); pos++ {
		for _, v := range []byte{0x00, 0xFF, data[pos] ^ 0x80} {
			if v == data[pos] {
				continue
			}
			mut := append([]byte(nil), data...)
			mut[pos] = v
			rn, rc := driveReader(mut)
			sn, sclass := driveScanner(mut)
			if rn != sn || rc != sclass {
				t.Fatalf("corrupt byte %d -> %#x: reader (%d records, %s), scanner (%d records, %s)",
					pos, v, rn, rc, sn, sclass)
			}
		}
	}
}

// TestDecodeRecordRejectsTrailingBytes pins the full-consumption
// check: a raw record with extra bytes appended is corrupt, not
// silently accepted.
func TestDecodeRecordRejectsTrailingBytes(t *testing.T) {
	data := encodeConns(t, scannerConns(t))
	sc := NewScanner(bytes.NewReader(data))
	raw, err := sc.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	var c Connection
	if err := DecodeRecord(append(raw, 0xEE), &c); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: got %v, want ErrCorrupt", err)
	}
	if err := DecodeRecord(raw[:len(raw)-1], &c); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short record: got %v, want ErrCorrupt", err)
	}
	if err := DecodeRecord(nil, &c); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty record: got %v, want ErrCorrupt", err)
	}
}

// TestScannerSlabAppend pins the slab contract: Next appends to dst,
// so several records can accumulate in one slab without the earlier
// ones moving or changing.
func TestScannerSlabAppend(t *testing.T) {
	conns := scannerConns(t)
	data := encodeConns(t, conns)
	sc := NewScanner(bytes.NewReader(data))
	var slab []byte
	offs := []int{0}
	for {
		next, err := sc.Next(slab)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		slab = next
		offs = append(offs, len(slab))
	}
	if got := len(offs) - 1; got != len(conns) {
		t.Fatalf("scanned %d records, want %d", got, len(conns))
	}
	for i := 0; i < len(offs)-1; i++ {
		var c Connection
		if err := DecodeRecord(slab[offs[i]:offs[i+1]], &c); err != nil {
			t.Fatalf("record %d from shared slab: %v", i, err)
		}
		if !connEqual(conns[i], &c) {
			t.Errorf("record %d from shared slab mismatches original", i)
		}
	}
}

func TestScannerErrorSticky(t *testing.T) {
	data := encodeConns(t, scannerConns(t))
	sc := NewScanner(bytes.NewReader(data[:len(data)-3]))
	var firstErr error
	for {
		if _, err := sc.Next(nil); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == io.EOF {
		t.Fatal("truncated stream ended cleanly")
	}
	if _, err := sc.Next(nil); err != firstErr {
		t.Errorf("error not sticky: first %v, then %v", firstErr, err)
	}
}

// FuzzRecordScanner feeds arbitrary byte streams — seeded with valid
// captures, truncations, and mutations — to both front ends and
// requires identical record counts, identical terminal error classes,
// and that every scanner-approved slab decodes to exactly the
// connection the Reader produced. This is the invariant the pipeline's
// partial-results exit code rests on.
func FuzzRecordScanner(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(&Connection{
		SrcIP: netip.MustParseAddr("20.0.0.1"), DstIP: netip.MustParseAddr("192.0.2.1"),
		SrcPort: 1, DstPort: 443, IPVersion: 4,
		Packets: []PacketRecord{
			{Flags: packet.FlagsSYN, Seq: 9},
			{Flags: packet.FlagsPSHACK, Seq: 10, PayloadLen: 40, Payload: []byte("abcdef")},
		},
	})
	_ = w.Write(&Connection{
		SrcIP: netip.MustParseAddr("2600:1::5"), DstIP: netip.MustParseAddr("2600:2::80"),
		SrcPort: 2, DstPort: 80, IPVersion: 6,
	})
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("TDCAP001"))
	f.Add([]byte("TDCAP001\xC0"))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[20] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		sc := NewScanner(bytes.NewReader(data))
		var c Connection
		for i := 0; i < 200; i++ {
			want, rerr := r.Next()
			raw, serr := sc.Next(nil)
			if got, want := errClass(serr), errClass(rerr); got != want {
				t.Fatalf("record %d: scanner error class %q (%v), reader %q (%v)", i, got, serr, want, rerr)
			}
			if rerr != nil {
				return
			}
			if err := DecodeRecord(raw, &c); err != nil {
				t.Fatalf("record %d: scanner approved bytes DecodeRecord rejects: %v", i, err)
			}
			if !connEqual(want, &c) {
				t.Fatalf("record %d: decode mismatch:\nreader:  %+v\nscanner: %+v", i, want, &c)
			}
		}
	})
}
