package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"

	"tamperdetect/internal/packet"
)

// The TDCAP binary format stores sampled connection records compactly:
//
//	file   := magic(8) connection*
//	conn   := marker(1=0xC0) ipver(1) src dst srcPort(2) dstPort(2)
//	          totalPackets(4) lastActivity(8) closeTime(8)
//	          packetCount(2) packet*
//	packet := ts(8) flags(1) seq(4) ack(4) ipid(2) ttl(1) window(2)
//	          payloadLen(4) capturedLen(2) payload hasOptions(1)
//
// Addresses are 4 or 16 bytes by ipver. All integers are big-endian.

var captureMagic = [8]byte{'T', 'D', 'C', 'A', 'P', '0', '0', '1'}

const connMarker = 0xC0

// Codec errors.
var (
	ErrBadMagic = errors.New("capture: bad file magic")
	ErrCorrupt  = errors.New("capture: corrupt record")
)

// Decode bounds for untrusted input. A length prefix beyond these is a
// corrupt (or hostile) file, never a reason to allocate gigabytes: real
// records hold ~10 packets of ≤512 captured bytes.
const (
	maxPacketsPerRecord = 1 << 14
	maxCapturedPayload  = 1 << 14
	// initialPacketAlloc caps the slice capacity allocated on the
	// strength of an unvalidated count; growth past it requires the
	// bytes to actually be present in the stream.
	initialPacketAlloc = 256
)

// Writer streams connection records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	began bool
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one connection record. Records that exceed the codec's
// wire limits (packet count, captured payload length) are rejected
// rather than silently truncated: such a record would not round-trip.
func (w *Writer) Write(c *Connection) error {
	if len(c.Packets) > maxPacketsPerRecord {
		return fmt.Errorf("capture: record has %d packets, max %d", len(c.Packets), maxPacketsPerRecord)
	}
	for i := range c.Packets {
		if len(c.Packets[i].Payload) > maxCapturedPayload {
			return fmt.Errorf("capture: packet %d captured payload %d bytes, max %d",
				i, len(c.Packets[i].Payload), maxCapturedPayload)
		}
	}
	if !w.began {
		if _, err := w.w.Write(captureMagic[:]); err != nil {
			return err
		}
		w.began = true
	}
	buf := make([]byte, 0, 64+len(c.Packets)*40)
	buf = append(buf, connMarker, byte(c.IPVersion))
	buf = appendAddr(buf, c.SrcIP, c.IPVersion)
	buf = appendAddr(buf, c.DstIP, c.IPVersion)
	buf = binary.BigEndian.AppendUint16(buf, c.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, c.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.TotalPackets))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.LastActivity))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.CloseTime))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.Packets)))
	for i := range c.Packets {
		p := &c.Packets[i]
		buf = binary.BigEndian.AppendUint64(buf, uint64(p.Timestamp))
		buf = append(buf, byte(p.Flags))
		buf = binary.BigEndian.AppendUint32(buf, p.Seq)
		buf = binary.BigEndian.AppendUint32(buf, p.Ack)
		buf = binary.BigEndian.AppendUint16(buf, p.IPID)
		buf = append(buf, p.TTL)
		buf = binary.BigEndian.AppendUint16(buf, p.Window)
		buf = binary.BigEndian.AppendUint32(buf, uint32(p.PayloadLen))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Payload)))
		buf = append(buf, p.Payload...)
		if p.HasOptions {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	_, err := w.w.Write(buf)
	return err
}

// Flush commits buffered data. Call it before closing the underlying
// writer. An empty capture still gets a valid header.
func (w *Writer) Flush() error {
	if !w.began {
		if _, err := w.w.Write(captureMagic[:]); err != nil {
			return err
		}
		w.began = true
	}
	return w.w.Flush()
}

func appendAddr(buf []byte, a netip.Addr, ipver int) []byte {
	if ipver == 6 {
		b := a.As16()
		return append(buf, b[:]...)
	}
	b := a.As4()
	return append(buf, b[:]...)
}

// Reader streams connection records from an io.Reader.
type Reader struct {
	r     *bufio.Reader
	began bool
	count int
	err   error // sticky error for Next
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Read returns the next connection, or io.EOF at the end.
func (r *Reader) Read() (*Connection, error) {
	if !r.began {
		var magic [8]byte
		if _, err := io.ReadFull(r.r, magic[:]); err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
		}
		if magic != captureMagic {
			return nil, ErrBadMagic
		}
		r.began = true
	}
	marker, err := r.r.ReadByte()
	if err != nil {
		return nil, err // io.EOF at a record boundary is clean EOF
	}
	if marker != connMarker {
		return nil, ErrCorrupt
	}
	var hdr [1]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, corrupt(err)
	}
	ipver := int(hdr[0])
	if ipver != 4 && ipver != 6 {
		return nil, ErrCorrupt
	}
	c := &Connection{IPVersion: ipver}
	if c.SrcIP, err = r.readAddr(ipver); err != nil {
		return nil, err
	}
	if c.DstIP, err = r.readAddr(ipver); err != nil {
		return nil, err
	}
	var fixed [2 + 2 + 4 + 8 + 8 + 2]byte
	if _, err := io.ReadFull(r.r, fixed[:]); err != nil {
		return nil, corrupt(err)
	}
	c.SrcPort = binary.BigEndian.Uint16(fixed[0:2])
	c.DstPort = binary.BigEndian.Uint16(fixed[2:4])
	c.TotalPackets = int(binary.BigEndian.Uint32(fixed[4:8]))
	c.LastActivity = int64(binary.BigEndian.Uint64(fixed[8:16]))
	c.CloseTime = int64(binary.BigEndian.Uint64(fixed[16:24]))
	n := int(binary.BigEndian.Uint16(fixed[24:26]))
	if n > maxPacketsPerRecord {
		return nil, ErrCorrupt
	}
	// Allocate incrementally: the count is untrusted, so capacity beyond
	// initialPacketAlloc is only committed as packets actually decode.
	c.Packets = make([]PacketRecord, 0, min(n, initialPacketAlloc))
	for i := 0; i < n; i++ {
		var p PacketRecord
		var ph [8 + 1 + 4 + 4 + 2 + 1 + 2 + 4 + 2]byte
		if _, err := io.ReadFull(r.r, ph[:]); err != nil {
			return nil, corrupt(err)
		}
		p.Timestamp = int64(binary.BigEndian.Uint64(ph[0:8]))
		p.Flags = packet.TCPFlags(ph[8])
		p.Seq = binary.BigEndian.Uint32(ph[9:13])
		p.Ack = binary.BigEndian.Uint32(ph[13:17])
		p.IPID = binary.BigEndian.Uint16(ph[17:19])
		p.TTL = ph[19]
		p.Window = binary.BigEndian.Uint16(ph[20:22])
		p.PayloadLen = int(binary.BigEndian.Uint32(ph[22:26]))
		capLen := int(binary.BigEndian.Uint16(ph[26:28]))
		if capLen > maxCapturedPayload || capLen > p.PayloadLen {
			return nil, ErrCorrupt
		}
		if capLen > 0 {
			p.Payload = make([]byte, capLen)
			if _, err := io.ReadFull(r.r, p.Payload); err != nil {
				return nil, corrupt(err)
			}
		}
		opt, err := r.r.ReadByte()
		if err != nil {
			return nil, corrupt(err)
		}
		p.HasOptions = opt == 1
		c.Packets = append(c.Packets, p)
	}
	return c, nil
}

// Next is the incremental iterator: it returns the next connection
// record, or io.EOF at a clean end of stream. Unlike Read, errors are
// sticky — after any failure (including io.EOF) every subsequent call
// returns the same error, so streaming consumers can poll it from a
// loop without re-reading a corrupt tail. Records returned by Next are
// counted; see Count.
func (r *Reader) Next() (*Connection, error) {
	if r.err != nil {
		return nil, r.err
	}
	c, err := r.Read()
	if err != nil {
		r.err = err
		return nil, err
	}
	r.count++
	return c, nil
}

// Count reports how many records Next has returned so far.
func (r *Reader) Count() int { return r.count }

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]*Connection, error) {
	var out []*Connection
	for {
		c, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, c)
	}
}

func (r *Reader) readAddr(ipver int) (netip.Addr, error) {
	if ipver == 6 {
		var b [16]byte
		if _, err := io.ReadFull(r.r, b[:]); err != nil {
			return netip.Addr{}, corrupt(err)
		}
		return netip.AddrFrom16(b), nil
	}
	var b [4]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		return netip.Addr{}, corrupt(err)
	}
	return netip.AddrFrom4(b), nil
}

func corrupt(err error) error {
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}
