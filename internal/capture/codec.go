package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sync/atomic"

	"tamperdetect/internal/packet"
)

// The TDCAP binary format stores sampled connection records compactly:
//
//	file   := magic(8) connection*
//	conn   := marker(1=0xC0) ipver(1) src dst srcPort(2) dstPort(2)
//	          totalPackets(4) lastActivity(8) closeTime(8)
//	          packetCount(2) packet*
//	packet := ts(8) flags(1) seq(4) ack(4) ipid(2) ttl(1) window(2)
//	          payloadLen(4) capturedLen(2) payload hasOptions(1)
//
// Addresses are 4 or 16 bytes by ipver. All integers are big-endian.

var captureMagic = [8]byte{'T', 'D', 'C', 'A', 'P', '0', '0', '1'}

const connMarker = 0xC0

// Codec errors.
var (
	ErrBadMagic = errors.New("capture: bad file magic")
	ErrCorrupt  = errors.New("capture: corrupt record")
)

// Decode bounds for untrusted input. A length prefix beyond these is a
// corrupt (or hostile) file, never a reason to allocate gigabytes: real
// records hold ~10 packets of ≤512 captured bytes.
const (
	maxPacketsPerRecord = 1 << 14
	maxCapturedPayload  = 1 << 14
	// initialPacketAlloc caps the slice capacity allocated on the
	// strength of an unvalidated count; growth past it requires the
	// bytes to actually be present in the stream.
	initialPacketAlloc = 256
)

// Slab sizing for the Reader's arena allocator. Slabs are never reused
// or recycled, so records carved from them stay valid for as long as
// the caller retains them; a retained Connection pins at most one
// conn/packet/byte slab triple.
const (
	connSlabSize = 64
	pktSlabSize  = 1024
	byteSlabSize = 1 << 15

	// maxRetainedWriteBuf caps the encode scratch a Writer keeps between
	// records, so one pathological record doesn't pin memory forever.
	maxRetainedWriteBuf = 1 << 16
)

// Writer streams connection records to an io.Writer. With EnableIndex
// it also tracks record-boundary offsets and appends a segment-index
// footer on Flush, making the capture shard-scannable (see index.go).
type Writer struct {
	w       *bufio.Writer
	began   bool
	scratch []byte // reusable encode buffer

	interval  int // records per index point; 0 = no index
	off       int64
	records   int
	offsets   []int64
	finalized bool // index footer written; no further records
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// EnableIndex makes the writer record a boundary offset every interval
// records and append the index footer when Flush is called. It must be
// called before the first record, and a flushed indexed capture is
// final: further Writes fail rather than silently invalidating the
// footer (readers locate it from the end of the file).
func (w *Writer) EnableIndex(interval int) error {
	if w.began {
		return fmt.Errorf("capture: EnableIndex after first record")
	}
	if interval < 1 {
		return fmt.Errorf("capture: index interval %d, want >= 1", interval)
	}
	w.interval = interval
	return nil
}

// Write appends one connection record. Records that exceed the codec's
// wire limits (packet count, captured payload length) are rejected
// rather than silently truncated: such a record would not round-trip.
func (w *Writer) Write(c *Connection) error {
	if w.finalized {
		return fmt.Errorf("capture: write after index footer")
	}
	if len(c.Packets) > maxPacketsPerRecord {
		return fmt.Errorf("capture: record has %d packets, max %d", len(c.Packets), maxPacketsPerRecord)
	}
	for i := range c.Packets {
		if len(c.Packets[i].Payload) > maxCapturedPayload {
			return fmt.Errorf("capture: packet %d captured payload %d bytes, max %d",
				i, len(c.Packets[i].Payload), maxCapturedPayload)
		}
	}
	if !w.began {
		if _, err := w.w.Write(captureMagic[:]); err != nil {
			return err
		}
		w.began = true
		w.off = 8
	}
	if w.interval > 0 && w.records%w.interval == 0 {
		w.offsets = append(w.offsets, w.off)
	}
	buf := w.scratch[:0]
	if buf == nil {
		buf = make([]byte, 0, 64+len(c.Packets)*40)
	}
	buf = append(buf, connMarker, byte(c.IPVersion))
	buf = appendAddr(buf, c.SrcIP, c.IPVersion)
	buf = appendAddr(buf, c.DstIP, c.IPVersion)
	buf = binary.BigEndian.AppendUint16(buf, c.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, c.DstPort)
	buf = binary.BigEndian.AppendUint32(buf, uint32(c.TotalPackets))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.LastActivity))
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.CloseTime))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.Packets)))
	for i := range c.Packets {
		p := &c.Packets[i]
		buf = binary.BigEndian.AppendUint64(buf, uint64(p.Timestamp))
		buf = append(buf, byte(p.Flags))
		buf = binary.BigEndian.AppendUint32(buf, p.Seq)
		buf = binary.BigEndian.AppendUint32(buf, p.Ack)
		buf = binary.BigEndian.AppendUint16(buf, p.IPID)
		buf = append(buf, p.TTL)
		buf = binary.BigEndian.AppendUint16(buf, p.Window)
		buf = binary.BigEndian.AppendUint32(buf, uint32(p.PayloadLen))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Payload)))
		buf = append(buf, p.Payload...)
		if p.HasOptions {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	if cap(buf) <= maxRetainedWriteBuf {
		w.scratch = buf
	} else {
		w.scratch = nil
	}
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	w.records++
	w.off += int64(len(buf))
	return nil
}

// Flush commits buffered data. Call it before closing the underlying
// writer. An empty capture still gets a valid header. When indexing is
// enabled the first Flush finalizes the capture by appending the index
// footer; the capture accepts no further records after that.
func (w *Writer) Flush() error {
	if !w.began {
		if _, err := w.w.Write(captureMagic[:]); err != nil {
			return err
		}
		w.began = true
		w.off = 8
	}
	if w.interval > 0 && !w.finalized {
		idx := &Index{
			Interval: w.interval,
			Records:  w.records,
			DataSize: w.off,
			Offsets:  w.offsets,
		}
		if _, err := w.w.Write(appendFooter(nil, idx)); err != nil {
			return err
		}
		w.finalized = true
	}
	return w.w.Flush()
}

func appendAddr(buf []byte, a netip.Addr, ipver int) []byte {
	if ipver == 6 {
		b := a.As16()
		return append(buf, b[:]...)
	}
	b := a.As4()
	return append(buf, b[:]...)
}

// Reader streams connection records from an io.Reader.
//
// Read and Next return records carved from internal slabs: large
// pre-allocated arrays of Connections, PacketRecords, and payload
// bytes. Slab memory is never reused, so returned records remain valid
// indefinitely and may be retained by the caller; the cost model is
// O(1) allocations per connection amortised over the slab sizes rather
// than one allocation per record plus one per packet payload.
//
// NextInto decodes into caller-owned storage instead, reusing the
// destination's Packets and per-packet Payload capacity; it is the
// zero-steady-state-allocation path for callers that process one
// record at a time without retaining it.
type Reader struct {
	r     *bufio.Reader
	raw   *countingReader
	began bool
	count int
	err   error // sticky error for Next/NextInto

	connSlab []Connection
	pktSlab  []PacketRecord
	byteSlab []byte

	// tmp is the fixed-field decode scratch. Local arrays would escape
	// through the io.ReadFull interface call and cost one heap
	// allocation each per record; a field on the (already heap-resident)
	// Reader costs none.
	tmp [28]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	cr := &countingReader{r: r}
	return &Reader{r: bufio.NewReader(cr), raw: cr}
}

// countingReader counts raw bytes pulled from the underlying stream.
// The count is atomic so a live observer (a metrics scrape, a progress
// reporter) can read throughput while another goroutine decodes.
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// slabConn carves one Connection from the arena.
func (r *Reader) slabConn() *Connection {
	if len(r.connSlab) == 0 {
		r.connSlab = make([]Connection, connSlabSize)
	}
	c := &r.connSlab[0]
	r.connSlab = r.connSlab[1:]
	return c
}

// slabPackets carves a zeroed n-slot packet slice from the arena. The
// caller guarantees n ≤ initialPacketAlloc, so a hostile count can pin
// at most that many slots of already-allocated slab.
func (r *Reader) slabPackets(n int) []PacketRecord {
	if len(r.pktSlab) < n {
		r.pktSlab = make([]PacketRecord, pktSlabSize)
	}
	s := r.pktSlab[:n:n]
	r.pktSlab = r.pktSlab[n:]
	return s[:0]
}

// slabBytes carves an n-byte payload slice from the arena.
func (r *Reader) slabBytes(n int) []byte {
	if len(r.byteSlab) < n {
		r.byteSlab = make([]byte, max(byteSlabSize, n))
	}
	s := r.byteSlab[:n:n]
	r.byteSlab = r.byteSlab[n:]
	return s
}

// readHeader consumes the file magic (once) and one record's fixed
// fields into c, returning the record's packet count. io.EOF at a
// record boundary is returned verbatim as clean end-of-stream.
func (r *Reader) readHeader(c *Connection) (int, error) {
	if !r.began {
		magic := r.tmp[:8]
		if _, err := io.ReadFull(r.r, magic); err != nil {
			if err == io.EOF {
				return 0, io.EOF
			}
			return 0, fmt.Errorf("%w: %v", ErrBadMagic, err)
		}
		if [8]byte(magic) != captureMagic {
			return 0, ErrBadMagic
		}
		r.began = true
	}
	marker, err := r.r.ReadByte()
	if err != nil {
		return 0, err // io.EOF at a record boundary is clean EOF
	}
	// Index footers and repeated file magics at a record boundary are
	// structural, not records: skip and read the next marker, exactly
	// as Scanner does, so indexed and concatenated captures decode
	// identically through both front ends.
	for marker != connMarker {
		switch marker {
		case idxMarker:
			if err := r.skipFooter(); err != nil {
				return 0, err
			}
		case captureMagic[0]:
			rest := r.tmp[:7]
			if _, err := io.ReadFull(r.r, rest); err != nil {
				return 0, corrupt(err)
			}
			for i, b := range rest {
				if b != captureMagic[i+1] {
					return 0, ErrCorrupt
				}
			}
		default:
			return 0, ErrCorrupt
		}
		marker, err = r.r.ReadByte()
		if err != nil {
			return 0, err // clean EOF right after a footer or magic
		}
	}
	hdr, err := r.r.ReadByte()
	if err != nil {
		return 0, corrupt(err)
	}
	ipver := int(hdr)
	if ipver != 4 && ipver != 6 {
		return 0, ErrCorrupt
	}
	c.IPVersion = ipver
	if c.SrcIP, err = r.readAddr(ipver); err != nil {
		return 0, err
	}
	if c.DstIP, err = r.readAddr(ipver); err != nil {
		return 0, err
	}
	fixed := r.tmp[:2+2+4+8+8+2]
	if _, err := io.ReadFull(r.r, fixed); err != nil {
		return 0, corrupt(err)
	}
	c.SrcPort = binary.BigEndian.Uint16(fixed[0:2])
	c.DstPort = binary.BigEndian.Uint16(fixed[2:4])
	c.TotalPackets = int(binary.BigEndian.Uint32(fixed[4:8]))
	c.LastActivity = int64(binary.BigEndian.Uint64(fixed[8:16]))
	c.CloseTime = int64(binary.BigEndian.Uint64(fixed[16:24]))
	n := int(binary.BigEndian.Uint16(fixed[24:26]))
	if n > maxPacketsPerRecord {
		return 0, ErrCorrupt
	}
	return n, nil
}

// skipFooter consumes one index footer whose marker byte has already
// been read: payloadLen(8) payload payloadLen(8) magic(8). Mirrors
// Scanner.skipFooter byte for byte, including the error class of every
// failure, to preserve Reader/Scanner parity.
func (r *Reader) skipFooter() error {
	ln := r.tmp[:8]
	if _, err := io.ReadFull(r.r, ln); err != nil {
		return corrupt(err)
	}
	plen := binary.BigEndian.Uint64(ln)
	if plen > maxIndexPayload {
		return ErrCorrupt
	}
	if _, err := io.CopyN(io.Discard, r.r, int64(plen)); err != nil {
		return corrupt(err)
	}
	tail := r.tmp[:footerTailLen]
	if _, err := io.ReadFull(r.r, tail); err != nil {
		return corrupt(err)
	}
	if binary.BigEndian.Uint64(tail[:8]) != plen || [8]byte(tail[8:]) != idxFooterMagic {
		return ErrCorrupt
	}
	return nil
}

// readPacket decodes one packet record into p. payload allocates (or
// reuses) storage for capLen captured bytes; it is only called with
// capLen in (0, maxCapturedPayload].
func (r *Reader) readPacket(p *PacketRecord, payload func(capLen int) []byte) error {
	ph := r.tmp[:8+1+4+4+2+1+2+4+2]
	if _, err := io.ReadFull(r.r, ph); err != nil {
		return corrupt(err)
	}
	p.Timestamp = int64(binary.BigEndian.Uint64(ph[0:8]))
	p.Flags = packet.TCPFlags(ph[8])
	p.Seq = binary.BigEndian.Uint32(ph[9:13])
	p.Ack = binary.BigEndian.Uint32(ph[13:17])
	p.IPID = binary.BigEndian.Uint16(ph[17:19])
	p.TTL = ph[19]
	p.Window = binary.BigEndian.Uint16(ph[20:22])
	p.PayloadLen = int(binary.BigEndian.Uint32(ph[22:26]))
	capLen := int(binary.BigEndian.Uint16(ph[26:28]))
	if capLen > maxCapturedPayload || capLen > p.PayloadLen {
		return ErrCorrupt
	}
	if capLen > 0 {
		p.Payload = payload(capLen)
		if _, err := io.ReadFull(r.r, p.Payload); err != nil {
			return corrupt(err)
		}
	} else {
		p.Payload = p.Payload[:0]
	}
	opt, err := r.r.ReadByte()
	if err != nil {
		return corrupt(err)
	}
	p.HasOptions = opt == 1
	return nil
}

// Read returns the next connection, or io.EOF at the end. The record
// is carved from the reader's slabs and safe to retain.
func (r *Reader) Read() (*Connection, error) {
	c := r.slabConn()
	n, err := r.readHeader(c)
	if err != nil {
		return nil, err
	}
	if n <= initialPacketAlloc {
		c.Packets = r.slabPackets(n)
	} else {
		// The count is untrusted: capacity beyond initialPacketAlloc is
		// only committed as packets actually decode.
		c.Packets = make([]PacketRecord, 0, initialPacketAlloc)
	}
	for i := 0; i < n; i++ {
		c.Packets = append(c.Packets, PacketRecord{})
		if err := r.readPacket(&c.Packets[i], r.slabBytes); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Next is the incremental iterator: it returns the next connection
// record, or io.EOF at a clean end of stream. Unlike Read, errors are
// sticky — after any failure (including io.EOF) every subsequent call
// returns the same error, so streaming consumers can poll it from a
// loop without re-reading a corrupt tail. Records returned by Next are
// counted; see Count.
func (r *Reader) Next() (*Connection, error) {
	if r.err != nil {
		return nil, r.err
	}
	c, err := r.Read()
	if err != nil {
		r.err = err
		return nil, err
	}
	r.count++
	return c, nil
}

// NextInto decodes the next record into c, reusing c's Packets slice
// and each slot's Payload capacity. After a few records the reader
// reaches a steady state of zero allocations per call, which makes
// this the right API for single-pass consumers that do not retain
// records. Contents of c are unspecified on error. Errors are sticky
// and records are counted, exactly as for Next.
func (r *Reader) NextInto(c *Connection) error {
	if r.err != nil {
		return r.err
	}
	if err := r.readInto(c); err != nil {
		r.err = err
		return err
	}
	r.count++
	return nil
}

func (r *Reader) readInto(c *Connection) error {
	n, err := r.readHeader(c)
	if err != nil {
		return err
	}
	if cap(c.Packets) == 0 && n > 0 {
		c.Packets = make([]PacketRecord, 0, min(n, initialPacketAlloc))
	}
	c.Packets = c.Packets[:0]
	for i := 0; i < n; i++ {
		// Extend by reslicing when within capacity so the slot's previous
		// Payload backing array survives for reuse; append (which would
		// zero the slot) only on genuine growth, one decoded packet at a
		// time so a hostile count cannot force a large allocation.
		if i < cap(c.Packets) {
			c.Packets = c.Packets[:i+1]
		} else {
			c.Packets = append(c.Packets, PacketRecord{})
		}
		p := &c.Packets[i]
		if err := r.readPacket(p, func(capLen int) []byte {
			if cap(p.Payload) >= capLen {
				return p.Payload[:capLen]
			}
			return make([]byte, capLen)
		}); err != nil {
			return err
		}
	}
	return nil
}

// Count reports how many records Next and NextInto have returned so far.
func (r *Reader) Count() int { return r.count }

// BytesRead reports the raw bytes consumed from the underlying stream
// so far, including bytes buffered ahead of the decode position. It is
// safe to call concurrently with decoding, so throughput gauges can
// sample it live.
func (r *Reader) BytesRead() int64 { return r.raw.n.Load() }

// ReadAll drains the reader.
func (r *Reader) ReadAll() ([]*Connection, error) {
	var out []*Connection
	for {
		c, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, c)
	}
}

func (r *Reader) readAddr(ipver int) (netip.Addr, error) {
	if ipver == 6 {
		b := r.tmp[:16]
		if _, err := io.ReadFull(r.r, b); err != nil {
			return netip.Addr{}, corrupt(err)
		}
		return netip.AddrFrom16([16]byte(b)), nil
	}
	b := r.tmp[:4]
	if _, err := io.ReadFull(r.r, b); err != nil {
		return netip.Addr{}, corrupt(err)
	}
	return netip.AddrFrom4([4]byte(b)), nil
}

func corrupt(err error) error {
	return fmt.Errorf("%w: %v", ErrCorrupt, err)
}
