package capture

import (
	"fmt"
	"io"
)

// SegmentedSource is the shard-parallel front end over an indexed
// capture: it validates the index against the file, splits the record
// area into per-shard byte ranges cut at index points, and hands each
// shard its own Scanner over an independent io.SectionReader. Scanners
// are fully independent — separate windows, separate byte counters —
// so shards share no mutable state and need no locks.
//
// Trust model: the index is advisory, never authoritative. Structural
// validation (versioning, checksum, offset monotonicity, staleness)
// happens before construction succeeds, and every segment seam is
// re-validated during the scan itself — each shard's scanner must
// consume exactly its byte range and yield exactly the record count
// the index promised (CheckSegment). A hostile or stale index can
// therefore cost a failed run, but never a misdecoded record.
type SegmentedSource struct {
	ra       io.ReaderAt
	idx      *Index
	segs     []Segment
	scanners []*Scanner
}

// NewSegmentedSource validates idx against the capture in ra (size
// bytes) and splits it into at most shards segments. Validation
// failures come back as ErrBadIndex/ErrStaleIndex/ErrBadMagic so
// callers can fall back to the single-scanner path with a warning.
func NewSegmentedSource(ra io.ReaderAt, size int64, idx *Index, shards int) (*SegmentedSource, error) {
	if err := idx.validate(); err != nil {
		return nil, err
	}
	if err := idx.CheckFileSize(size); err != nil {
		return nil, err
	}
	if size < 8 {
		return nil, fmt.Errorf("%w: %d-byte file", ErrBadMagic, size)
	}
	var magic [8]byte
	if _, err := ra.ReadAt(magic[:], 0); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if magic != captureMagic {
		return nil, ErrBadMagic
	}
	segs := idx.Segments(shards)
	return &SegmentedSource{ra: ra, idx: idx, segs: segs, scanners: make([]*Scanner, len(segs))}, nil
}

// Index returns the validated index the source was built from.
func (s *SegmentedSource) Index() *Index { return s.idx }

// Records reports the total record count the index promises.
func (s *SegmentedSource) Records() int { return s.idx.Records }

// Segments reports how many shards the capture was split into. It can
// be lower than requested (few index points) or zero (empty capture).
func (s *SegmentedSource) Segments() int { return len(s.segs) }

// Segment returns shard i's byte range and record span.
func (s *SegmentedSource) Segment(i int) Segment { return s.segs[i] }

// Scanner returns shard i's scanner, creating it on first use. Each
// scanner owns an independent SectionReader over [Start, End), starts
// in mid-stream mode (the segment base is a record boundary, not a
// file header), and reports file-absolute offsets.
func (s *SegmentedSource) Scanner(i int) *Scanner {
	if s.scanners[i] == nil {
		seg := s.segs[i]
		sec := io.NewSectionReader(s.ra, seg.Start, seg.End-seg.Start)
		s.scanners[i] = newScannerAt(sec, seg.Start)
	}
	return s.scanners[i]
}

// CheckSegment validates shard i's seam invariants after its scanner
// returned a clean io.EOF: the scanner must have consumed its byte
// range exactly and produced exactly the promised record count. Any
// mismatch means the index lied about a boundary — the caller's run
// is invalid and the error says so as ErrBadIndex.
func (s *SegmentedSource) CheckSegment(i int) error {
	seg, sc := s.segs[i], s.scanners[i]
	if sc == nil {
		return fmt.Errorf("%w: segment %d never scanned", ErrBadIndex, i)
	}
	if got := sc.Count(); got != seg.Records {
		return fmt.Errorf("%w: segment %d yielded %d records, index promised %d",
			ErrBadIndex, i, got, seg.Records)
	}
	if off := sc.Offset(); off != seg.End {
		return fmt.Errorf("%w: segment %d ended at offset %d, want %d",
			ErrBadIndex, i, off, seg.End)
	}
	return nil
}

// BytesRead reports the aggregate raw bytes consumed across every
// shard's scanner — the multi-source answer to Reader.BytesRead, so
// throughput accounting sums shards instead of reporting whichever
// shard was observed last. Safe to call concurrently with scanning.
func (s *SegmentedSource) BytesRead() int64 {
	var n int64
	for _, sc := range s.scanners {
		if sc != nil {
			n += sc.BytesRead()
		}
	}
	return n
}
