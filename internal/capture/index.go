package capture

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"tamperdetect/internal/wire"
)

// The segment index makes a TDCAP file shard-scannable: it records the
// byte offset of every Interval-th record so independent scanners can
// each take a byte range that is guaranteed to start and end on record
// boundaries. Two carriers exist for the same payload:
//
//   - an in-file footer, appended by an indexing Writer after the last
//     record:
//
//	footer := idxMarker(1=0xC1) payloadLen(8) payload
//	          payloadLen(8) idxFooterMagic(8)
//
//     The leading marker+length lets a streaming Reader/Scanner skip
//     the footer when it meets one at a record boundary; the trailing
//     length+magic lets ReadFooterIndex locate the payload from the
//     end of the file without scanning. Payload lengths are big-endian.
//
//   - a sidecar file (capture path + ".tdx", see SidecarPath), written
//     by cmd/tdcapindex for legacy captures that cannot be rewritten:
//
//	sidecar := idxSidecarMagic(8) payload
//
// The payload itself is versioned, varint-packed with internal/wire,
// strictly bounds-checked on decode, and closed by a CRC-32 so that a
// truncated or bit-flipped index is detected deterministically at load
// time — consumers then fall back to the plain single-scanner path
// rather than risk misdecoding:
//
//	payload := version(uvarint=1) interval records dataSize fileSize
//	           nOffsets delta-encoded offsets... crc32(4, LE)
//
// Offsets are strictly increasing absolute file offsets delta-encoded
// as uvarints; the first is always 8 (the record area starts right
// after the file magic). dataSize is the offset one past the last
// record — the footer, when present, starts exactly there. fileSize is
// the total size of the capture file at indexing time for sidecars
// (staleness check), or 0 for footer-resident indexes, whose location
// at the very end of the file is its own staleness proof.

const (
	indexVersion = 1

	// idxMarker opens an index footer where a record marker (0xC0)
	// would otherwise appear, so streaming consumers can skip it.
	idxMarker = 0xC1

	// maxIndexPayload bounds the encoded index; a length prefix beyond
	// it is corrupt, never a reason to allocate or skip gigabytes.
	maxIndexPayload = 64 << 20

	// maxIndexOffsets bounds the offset count (16M index points covers
	// any plausible capture at any interval).
	maxIndexOffsets = 1 << 24

	// DefaultIndexInterval is the records-per-index-point granularity
	// writers use unless told otherwise. At ~100 bytes per record one
	// point per 1024 records costs ~2 payload bytes per 100 KiB of
	// capture and still splits a 60k-record file into 58 seams.
	DefaultIndexInterval = 1024
)

var (
	idxFooterMagic  = [8]byte{'T', 'D', 'X', 'F', 'T', 'R', '0', '1'}
	idxSidecarMagic = [8]byte{'T', 'D', 'X', 'S', 'D', 'C', '0', '1'}
)

// Index errors. Consumers treat every one of them the same way — use
// a single scanner instead — so a damaged index can degrade throughput
// but never correctness.
var (
	// ErrNoIndex reports that the capture has no footer and no sidecar.
	ErrNoIndex = errors.New("capture: no segment index")
	// ErrBadIndex reports an index that is structurally invalid,
	// truncated, or fails its checksum.
	ErrBadIndex = errors.New("capture: bad segment index")
	// ErrStaleIndex reports an index that is well-formed but describes
	// a different file state (the capture grew or shrank since
	// indexing).
	ErrStaleIndex = errors.New("capture: stale segment index")
)

// Index records where every Interval-th record of a capture starts.
type Index struct {
	Interval int     // records per index point, >= 1
	Records  int     // total records in the capture
	DataSize int64   // offset one past the last record (footer starts here)
	FileSize int64   // capture size at indexing time (sidecar), 0 for footer
	Offsets  []int64 // Offsets[k] = start of record k*Interval; Offsets[0] == 8
}

// Segment is one shard's slice of a capture: the byte range
// [Start, End), known to begin and end on record boundaries per the
// index, and the records it holds.
type Segment struct {
	Start, End  int64
	FirstRecord int
	Records     int
}

// Segments splits the index into at most shards contiguous segments of
// near-equal BYTE size, cut only at index points so every seam is a
// record boundary. Balancing by bytes rather than index points keeps
// shard wall-clock even when record sizes vary wildly (long censored
// connections serialize to many times the bytes of a SYN scan, so
// equal point counts can leave one scanner with most of the file).
// Each shard's byte target is recomputed from what remains, so early
// oversized chunks do not starve the tail. Fewer segments come back
// when the index has fewer points than shards; an empty capture yields
// none.
func (idx *Index) Segments(shards int) []Segment {
	if shards < 1 {
		shards = 1
	}
	np := len(idx.Offsets)
	if np == 0 {
		return nil
	}
	if shards > np {
		shards = np
	}
	// pointEnd(h) is the byte offset one past index point h-1's chunk.
	pointEnd := func(h int) int64 {
		if h < np {
			return idx.Offsets[h]
		}
		return idx.DataSize
	}
	segs := make([]Segment, 0, shards)
	lo := 0
	for s := 0; s < shards && lo < np; s++ {
		target := (idx.DataSize - idx.Offsets[lo]) / int64(shards-s)
		hi := lo + 1
		// Grow the segment to its byte target, but always leave at
		// least one index point for each shard still to come.
		for hi < np && np-hi > shards-s-1 && pointEnd(hi)-idx.Offsets[lo] < target {
			hi++
		}
		seg := Segment{
			Start:       idx.Offsets[lo],
			End:         pointEnd(hi),
			FirstRecord: lo * idx.Interval,
		}
		if hi < np {
			seg.Records = (hi - lo) * idx.Interval
		} else {
			seg.Records = idx.Records - seg.FirstRecord
		}
		segs = append(segs, seg)
		lo = hi
	}
	return segs
}

// validate checks the structural invariants shared by both carriers.
func (idx *Index) validate() error {
	if idx.Interval < 1 {
		return fmt.Errorf("%w: interval %d", ErrBadIndex, idx.Interval)
	}
	if idx.Records < 0 {
		return fmt.Errorf("%w: negative record count", ErrBadIndex)
	}
	want := 0
	if idx.Records > 0 {
		want = (idx.Records + idx.Interval - 1) / idx.Interval
	}
	if len(idx.Offsets) != want {
		return fmt.Errorf("%w: %d offsets for %d records at interval %d (want %d)",
			ErrBadIndex, len(idx.Offsets), idx.Records, idx.Interval, want)
	}
	if idx.DataSize < 8 {
		return fmt.Errorf("%w: data size %d", ErrBadIndex, idx.DataSize)
	}
	prev := int64(7) // first offset must be 8, right past the file magic
	for k, off := range idx.Offsets {
		if k == 0 && off != 8 {
			return fmt.Errorf("%w: first offset %d, want 8", ErrBadIndex, off)
		}
		if off <= prev || off >= idx.DataSize {
			return fmt.Errorf("%w: offset %d out of order or range", ErrBadIndex, off)
		}
		prev = off
	}
	if idx.FileSize != 0 && idx.FileSize < idx.DataSize {
		return fmt.Errorf("%w: file size %d below data size %d", ErrBadIndex, idx.FileSize, idx.DataSize)
	}
	return nil
}

// CheckFileSize verifies the index still describes a capture of the
// given size. Sidecar indexes carry the exact size they were built
// against; footer indexes are validated positionally by
// ReadFooterIndex instead.
func (idx *Index) CheckFileSize(size int64) error {
	if idx.FileSize != 0 && idx.FileSize != size {
		return fmt.Errorf("%w: indexed at %d bytes, file is %d", ErrStaleIndex, idx.FileSize, size)
	}
	if idx.DataSize > size {
		return fmt.Errorf("%w: data size %d beyond file end %d", ErrStaleIndex, idx.DataSize, size)
	}
	return nil
}

// appendIndexPayload appends the versioned, checksummed payload.
func appendIndexPayload(b []byte, idx *Index) []byte {
	start := len(b)
	b = wire.AppendUvarint(b, indexVersion)
	b = wire.AppendUvarint(b, uint64(idx.Interval))
	b = wire.AppendUvarint(b, uint64(idx.Records))
	b = wire.AppendUvarint(b, uint64(idx.DataSize))
	b = wire.AppendUvarint(b, uint64(idx.FileSize))
	b = wire.AppendUvarint(b, uint64(len(idx.Offsets)))
	prev := int64(0)
	for _, off := range idx.Offsets {
		b = wire.AppendUvarint(b, uint64(off-prev))
		prev = off
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

// decodeIndexPayload strictly decodes and validates one payload. Any
// damage — truncation, trailing bytes, checksum mismatch, structural
// nonsense — comes back as ErrBadIndex.
func decodeIndexPayload(data []byte) (*Index, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("%w: %d-byte payload", ErrBadIndex, len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadIndex)
	}
	d := wire.NewDecoder(body)
	if v := d.Uvarint(); d.Err() == nil && v != indexVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadIndex, v)
	}
	idx := &Index{}
	interval := d.Uvarint()
	records := d.Uvarint()
	dataSize := d.Uvarint()
	fileSize := d.Uvarint()
	if d.Err() == nil {
		if interval > 1<<30 || records > uint64(maxIndexOffsets)*interval ||
			dataSize > 1<<62 || fileSize > 1<<62 {
			return nil, fmt.Errorf("%w: field out of range", ErrBadIndex)
		}
		idx.Interval = int(interval)
		idx.Records = int(records)
		idx.DataSize = int64(dataSize)
		idx.FileSize = int64(fileSize)
	}
	n := d.Len(maxIndexOffsets, 1)
	if d.Err() == nil && n > 0 {
		idx.Offsets = make([]int64, n)
		var off uint64
		for k := range idx.Offsets {
			off += d.Uvarint()
			if off > 1<<62 {
				return nil, fmt.Errorf("%w: offset overflow", ErrBadIndex)
			}
			idx.Offsets[k] = int64(off)
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndex, err)
	}
	if err := idx.validate(); err != nil {
		return nil, err
	}
	return idx, nil
}

// footerTailLen is the fixed tail of a footer: payloadLen(8) magic(8).
const footerTailLen = 16

// appendFooter appends the complete in-file footer for idx.
func appendFooter(b []byte, idx *Index) []byte {
	payload := appendIndexPayload(nil, idx)
	b = append(b, idxMarker)
	b = binary.BigEndian.AppendUint64(b, uint64(len(payload)))
	b = append(b, payload...)
	b = binary.BigEndian.AppendUint64(b, uint64(len(payload)))
	return append(b, idxFooterMagic[:]...)
}

// ReadFooterIndex locates and decodes the index footer of the capture
// in ra (size bytes long). It returns ErrNoIndex when the file simply
// does not end in a footer — appended records erase the trailing magic,
// so a stale footer reads as absent — and ErrBadIndex/ErrStaleIndex
// when a footer is present but damaged or displaced.
func ReadFooterIndex(ra io.ReaderAt, size int64) (*Index, error) {
	var tail [footerTailLen]byte
	if size < int64(footerTailLen) {
		return nil, ErrNoIndex
	}
	if _, err := ra.ReadAt(tail[:], size-footerTailLen); err != nil {
		return nil, fmt.Errorf("%w: reading tail: %v", ErrBadIndex, err)
	}
	if [8]byte(tail[8:]) != idxFooterMagic {
		return nil, ErrNoIndex
	}
	plen := binary.BigEndian.Uint64(tail[:8])
	if plen > maxIndexPayload || int64(plen)+9+footerTailLen > size {
		return nil, fmt.Errorf("%w: footer payload length %d", ErrBadIndex, plen)
	}
	head := make([]byte, 9+plen)
	footerStart := size - footerTailLen - int64(plen) - 9
	if _, err := ra.ReadAt(head, footerStart); err != nil {
		return nil, fmt.Errorf("%w: reading footer: %v", ErrBadIndex, err)
	}
	if head[0] != idxMarker || binary.BigEndian.Uint64(head[1:9]) != plen {
		return nil, fmt.Errorf("%w: footer framing mismatch", ErrBadIndex)
	}
	idx, err := decodeIndexPayload(head[9:])
	if err != nil {
		return nil, err
	}
	if idx.FileSize != 0 {
		return nil, fmt.Errorf("%w: footer index carries a sidecar file size", ErrBadIndex)
	}
	if idx.DataSize != footerStart {
		return nil, fmt.Errorf("%w: footer at %d, index says data ends at %d", ErrStaleIndex, footerStart, idx.DataSize)
	}
	return idx, nil
}

// EncodeSidecar renders idx as a standalone .tdx sidecar file.
// idx.FileSize must be set to the capture's size so loads can detect
// staleness.
func EncodeSidecar(idx *Index) []byte {
	b := append([]byte(nil), idxSidecarMagic[:]...)
	return appendIndexPayload(b, idx)
}

// DecodeSidecar decodes a sidecar file's bytes. Pair with
// Index.CheckFileSize against the capture it claims to describe.
func DecodeSidecar(data []byte) (*Index, error) {
	if len(data) < 8 || [8]byte(data[:8]) != idxSidecarMagic {
		return nil, fmt.Errorf("%w: bad sidecar magic", ErrBadIndex)
	}
	if len(data)-8 > maxIndexPayload {
		return nil, fmt.Errorf("%w: sidecar payload of %d bytes", ErrBadIndex, len(data)-8)
	}
	idx, err := decodeIndexPayload(data[8:])
	if err != nil {
		return nil, err
	}
	if idx.FileSize == 0 {
		return nil, fmt.Errorf("%w: sidecar index missing file size", ErrBadIndex)
	}
	return idx, nil
}

// SidecarPath is where tdcapindex writes (and consumers look for) the
// sidecar index of the capture at path.
func SidecarPath(path string) string { return path + ".tdx" }

// FindIndex looks for a segment index describing the capture in ra:
// the in-file footer first, then — when path is non-empty — the
// sidecar next to it. ErrNoIndex means neither exists; any other error
// means an index exists but cannot be trusted, and the caller should
// scan single-threaded.
func FindIndex(ra io.ReaderAt, size int64, path string) (*Index, error) {
	idx, err := ReadFooterIndex(ra, size)
	if !errors.Is(err, ErrNoIndex) {
		return idx, err
	}
	if path == "" {
		return nil, ErrNoIndex
	}
	data, rerr := os.ReadFile(SidecarPath(path))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, ErrNoIndex
		}
		return nil, fmt.Errorf("%w: sidecar: %v", ErrBadIndex, rerr)
	}
	idx, err = DecodeSidecar(data)
	if err != nil {
		return nil, err
	}
	if err := idx.CheckFileSize(size); err != nil {
		return nil, err
	}
	return idx, nil
}

// BuildIndex scans a whole TDCAP stream once, recording every
// interval-th record boundary. It is the one-pass legacy path behind
// cmd/tdcapindex; captures written by an indexing Writer get the same
// payload for free. The resulting FileSize is left 0 — sidecar writers
// set it to the capture's size before encoding.
func BuildIndex(r io.Reader, interval int) (*Index, error) {
	if interval < 1 {
		return nil, fmt.Errorf("capture: index interval %d, want >= 1", interval)
	}
	sc := NewScanner(r)
	idx := &Index{Interval: interval, DataSize: 8}
	var buf []byte
	for {
		var err error
		buf, err = sc.Next(buf[:0])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if idx.Records%interval == 0 {
			idx.Offsets = append(idx.Offsets, sc.RecordOffset())
		}
		idx.Records++
		idx.DataSize = sc.DataEnd()
	}
	if idx.Records == 0 {
		// Empty capture: DataEnd never advanced past the magic (or the
		// stream was empty altogether).
		idx.DataSize = max(sc.DataEnd(), 8)
	}
	return idx, nil
}
