package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"

	"tamperdetect/internal/packet"
)

// Scanner splits a TDCAP stream into raw, undecoded record byte slices
// without materialising Connections. It is the front half of the
// parallel decode path: one scanner goroutine finds record boundaries
// (walking only each record's fixed-size headers and length prefixes),
// and the actual field decoding — DecodeRecord — runs on whichever
// worker receives the bytes.
//
// The scanner performs the same structural validation as Reader
// (marker byte, IP version, packet-count and captured-payload bounds),
// so a slice it returns is always decodable; DecodeRecord failing on
// scanner-approved bytes would indicate a bug, not bad input. Error
// classes mirror Reader exactly — io.EOF at a record boundary is a
// clean end of stream, ErrBadMagic for a damaged header, ErrCorrupt
// mid-record — so consumers keep the same partial-results behaviour
// (tamperscan's exit 3) regardless of which front end read the file.
//
// Internally the scanner reads the stream in large chunks and parses
// boundaries in place, then copies each complete record out with a
// single memcpy. That keeps the per-record cost to a boundary walk
// plus one copy, far below the cost of decoding, so one scanner feeds
// many decode workers.
type Scanner struct {
	raw     *countingReader
	buf     []byte // chunked read window
	rpos    int    // parse cursor: start of the next unscanned record
	wpos    int    // bytes of buf filled from the stream
	start   int    // start of the record being scanned (compaction anchor)
	p       int    // cursor within the record being scanned
	abs     int64  // absolute stream offset of buf[0]
	lastOff int64  // absolute offset of the last record returned
	dataEnd int64  // absolute offset one past the last record returned
	eof     bool   // underlying stream hit EOF
	began   bool   // magic consumed
	count   int
	err     error // sticky error for Next
}

// scanBufSize is the scanner's initial window; it grows only when a
// single record is larger than the window.
const scanBufSize = 64 << 10

// NewScanner wraps r.
func NewScanner(r io.Reader) *Scanner {
	cr := &countingReader{r: r}
	return &Scanner{raw: cr, buf: make([]byte, scanBufSize)}
}

// newScannerAt wraps a reader positioned mid-stream at a record
// boundary (a segment cut at an index point): no file magic is
// expected, and base is the boundary's absolute file offset so
// RecordOffset and DataEnd stay file-absolute. The segment front end
// (SegmentedSource) builds one of these per shard.
func newScannerAt(r io.Reader, base int64) *Scanner {
	s := NewScanner(r)
	s.began = true
	s.abs = base
	s.dataEnd = base
	return s
}

// Next appends the raw bytes of the next record to dst and returns the
// extended slice. The appended bytes start at the record's marker byte
// (the file magic is consumed once and not part of any record) and are
// exactly what DecodeRecord accepts. Errors are sticky, records are
// counted, and io.EOF marks a clean end of stream, as for Reader.Next.
func (s *Scanner) Next(dst []byte) ([]byte, error) {
	if s.err != nil {
		return dst, s.err
	}
	rec, err := s.scan()
	if err != nil {
		s.err = err
		return dst, err
	}
	s.count++
	return append(dst, rec...), nil
}

// Count reports how many records Next has returned so far.
func (s *Scanner) Count() int { return s.count }

// BytesRead reports the raw bytes consumed from the underlying stream,
// including bytes buffered ahead of the scan position. Safe to call
// concurrently with scanning.
func (s *Scanner) BytesRead() int64 { return s.raw.n.Load() }

// RecordOffset reports the absolute stream offset at which the most
// recently returned record starts. Meaningful only after a successful
// Next; index builders use it to record boundary offsets.
func (s *Scanner) RecordOffset() int64 { return s.lastOff }

// DataEnd reports the absolute stream offset one past the most
// recently returned record — the end of record data so far, excluding
// any skipped index footer or repeated file magic. Before the first
// record it reports the offset just past the file magic (or the
// segment base for a mid-stream scanner).
func (s *Scanner) DataEnd() int64 { return s.dataEnd }

// Offset reports the absolute stream offset of the next unscanned
// byte. After a clean io.EOF it is the exact end of the consumed
// range, which segment consumers check against their segment bounds.
func (s *Scanner) Offset() int64 { return s.abs + int64(s.rpos) }

// fill makes at least need bytes available at buf[p:wpos], compacting
// the window from the current record's start and growing it when the
// record is larger than the window. It returns io.ErrUnexpectedEOF
// when the stream ends short.
func (s *Scanner) fill(need int) error {
	for s.wpos-s.p < need {
		if s.p+need > len(s.buf) {
			if s.start > 0 {
				n := copy(s.buf, s.buf[s.start:s.wpos])
				s.abs += int64(s.start)
				s.p -= s.start
				s.rpos = max(s.rpos-s.start, 0)
				s.wpos = n
				s.start = 0
			}
			if s.p+need > len(s.buf) {
				nb := make([]byte, max(2*len(s.buf), s.p+need))
				copy(nb, s.buf[:s.wpos])
				s.buf = nb
			}
		}
		if s.eof {
			return io.ErrUnexpectedEOF
		}
		n, err := s.raw.Read(s.buf[s.wpos:])
		s.wpos += n
		if err == io.EOF {
			s.eof = true
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// scan advances past one record and returns its bytes (a view into the
// scanner's window, valid until the next call).
func (s *Scanner) scan() ([]byte, error) {
	s.start, s.p = s.rpos, s.rpos
	if !s.began {
		if err := s.fill(8); err != nil {
			if s.wpos == s.p {
				// Nothing at all: an empty stream is clean EOF.
				return nil, io.EOF
			}
			return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
		}
		if [8]byte(s.buf[s.p:s.p+8]) != captureMagic {
			return nil, ErrBadMagic
		}
		s.began = true
		s.p += 8
		// The magic is not part of any record; drop it from the window.
		s.rpos, s.start = s.p, s.p
		s.dataEnd = s.abs + int64(s.p)
	}
	// Marker byte. No bytes here is a clean record boundary. An index
	// footer (idxMarker) or a repeated file magic at a boundary is
	// structural, not a record: skip it and look again, which makes
	// indexed captures and concatenations of TDCAP files scan cleanly.
	for {
		if err := s.fill(1); err != nil {
			if s.wpos == s.p {
				if err == io.ErrUnexpectedEOF {
					return nil, io.EOF
				}
				return nil, err // read error at a boundary, verbatim like Reader
			}
			return nil, err
		}
		b := s.buf[s.p]
		if b == connMarker {
			break
		}
		switch b {
		case idxMarker:
			if err := s.skipFooter(); err != nil {
				return nil, err
			}
		case captureMagic[0]:
			if err := s.fill(8); err != nil {
				return nil, corrupt(err)
			}
			if [8]byte(s.buf[s.p:s.p+8]) != captureMagic {
				return nil, ErrCorrupt
			}
			s.p += 8
		default:
			return nil, ErrCorrupt
		}
		// Skipped bytes are not part of any record.
		s.rpos, s.start = s.p, s.p
	}
	s.p++
	if err := s.fillRec(1); err != nil {
		return nil, err
	}
	ipver := s.buf[s.p]
	s.p++
	if ipver != 4 && ipver != 6 {
		return nil, ErrCorrupt
	}
	addrLen := 4
	if ipver == 6 {
		addrLen = 16
	}
	// src dst srcPort(2) dstPort(2) totalPackets(4) lastActivity(8)
	// closeTime(8) packetCount(2)
	fixed := 2*addrLen + 26
	if err := s.fillRec(fixed); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(s.buf[s.p+fixed-2 : s.p+fixed]))
	s.p += fixed
	if n > maxPacketsPerRecord {
		return nil, ErrCorrupt
	}
	for i := 0; i < n; i++ {
		if err := s.fillRec(packetHeaderLen); err != nil {
			return nil, err
		}
		ph := s.buf[s.p : s.p+packetHeaderLen]
		payloadLen := int(binary.BigEndian.Uint32(ph[22:26]))
		capLen := int(binary.BigEndian.Uint16(ph[26:28]))
		if capLen > maxCapturedPayload || capLen > payloadLen {
			return nil, ErrCorrupt
		}
		s.p += packetHeaderLen
		if err := s.fillRec(capLen + 1); err != nil { // payload + hasOptions
			return nil, err
		}
		s.p += capLen + 1
	}
	rec := s.buf[s.start:s.p]
	s.lastOff = s.abs + int64(s.start)
	s.dataEnd = s.abs + int64(s.p)
	s.rpos = s.p
	return rec, nil
}

// skipFooter consumes one index footer whose marker byte is at s.p:
// marker(1) payloadLen(8) payload payloadLen(8) magic(8). The payload
// is discarded without buffering (it can be megabytes for a huge
// capture); the trailing length and magic are verified so a damaged
// footer surfaces as ErrCorrupt exactly as it would through Reader.
func (s *Scanner) skipFooter() error {
	if err := s.fill(9); err != nil {
		return corrupt(err)
	}
	plen := binary.BigEndian.Uint64(s.buf[s.p+1 : s.p+9])
	if plen > maxIndexPayload {
		return ErrCorrupt
	}
	s.p += 9
	if err := s.discard(int64(plen)); err != nil {
		return corrupt(err)
	}
	if err := s.fill(footerTailLen); err != nil {
		return corrupt(err)
	}
	if binary.BigEndian.Uint64(s.buf[s.p:s.p+8]) != plen ||
		[8]byte(s.buf[s.p+8:s.p+footerTailLen]) != idxFooterMagic {
		return ErrCorrupt
	}
	s.p += footerTailLen
	return nil
}

// discard consumes n bytes without retaining them. Only called between
// records (skipping a footer payload), so when the window runs dry it
// can be reset wholesale instead of grown.
func (s *Scanner) discard(n int64) error {
	if avail := int64(s.wpos - s.p); n <= avail {
		s.p += int(n)
		return nil
	} else {
		n -= avail
	}
	s.abs += int64(s.wpos)
	s.p, s.rpos, s.start, s.wpos = 0, 0, 0, 0
	for n > 0 && !s.eof {
		lim := int64(len(s.buf))
		if n < lim {
			lim = n
		}
		m, err := s.raw.Read(s.buf[:lim])
		s.abs += int64(m)
		n -= int64(m)
		if err == io.EOF {
			s.eof = true
			break
		}
		if err != nil {
			return err
		}
	}
	if n > 0 {
		return io.ErrUnexpectedEOF
	}
	return nil
}

// fillRec is fill for positions inside a record, where running out of
// bytes (or any read failure) means the record is corrupt.
func (s *Scanner) fillRec(need int) error {
	if err := s.fill(need); err != nil {
		return corrupt(err)
	}
	return nil
}

// packetHeaderLen is the fixed part of one encoded packet:
// ts(8) flags(1) seq(4) ack(4) ipid(2) ttl(1) window(2) payloadLen(4)
// capturedLen(2).
const packetHeaderLen = 8 + 1 + 4 + 4 + 2 + 1 + 2 + 4 + 2

// DecodeRecord decodes one raw record (as produced by Scanner.Next)
// into c, reusing c's Packets slice and each slot's Payload capacity
// exactly like Reader.NextInto — the zero-steady-state-allocation
// decode for workers that own a small set of reusable Connections.
// It re-validates the record's structure, so feeding it bytes that
// did not come from a Scanner yields ErrCorrupt rather than a panic.
// Contents of c are unspecified on error.
func DecodeRecord(raw []byte, c *Connection) error {
	if len(raw) < 2 || raw[0] != connMarker {
		return ErrCorrupt
	}
	ipver := int(raw[1])
	if ipver != 4 && ipver != 6 {
		return ErrCorrupt
	}
	c.IPVersion = ipver
	addrLen := 4
	if ipver == 6 {
		addrLen = 16
	}
	p := 2
	if len(raw)-p < 2*addrLen+26 {
		return ErrCorrupt
	}
	if ipver == 6 {
		c.SrcIP = netip.AddrFrom16([16]byte(raw[p : p+16]))
		c.DstIP = netip.AddrFrom16([16]byte(raw[p+16 : p+32]))
	} else {
		c.SrcIP = netip.AddrFrom4([4]byte(raw[p : p+4]))
		c.DstIP = netip.AddrFrom4([4]byte(raw[p+4 : p+8]))
	}
	p += 2 * addrLen
	c.SrcPort = binary.BigEndian.Uint16(raw[p : p+2])
	c.DstPort = binary.BigEndian.Uint16(raw[p+2 : p+4])
	c.TotalPackets = int(binary.BigEndian.Uint32(raw[p+4 : p+8]))
	c.LastActivity = int64(binary.BigEndian.Uint64(raw[p+8 : p+16]))
	c.CloseTime = int64(binary.BigEndian.Uint64(raw[p+16 : p+24]))
	n := int(binary.BigEndian.Uint16(raw[p+24 : p+26]))
	p += 26
	if n > maxPacketsPerRecord {
		return ErrCorrupt
	}
	if cap(c.Packets) == 0 && n > 0 {
		c.Packets = make([]PacketRecord, 0, min(n, initialPacketAlloc))
	}
	c.Packets = c.Packets[:0]
	for i := 0; i < n; i++ {
		if len(raw)-p < packetHeaderLen {
			return ErrCorrupt
		}
		// Extend by reslicing within capacity so the slot's previous
		// Payload backing array survives for reuse (see Reader.readInto).
		if i < cap(c.Packets) {
			c.Packets = c.Packets[:i+1]
		} else {
			c.Packets = append(c.Packets, PacketRecord{})
		}
		pk := &c.Packets[i]
		ph := raw[p : p+packetHeaderLen]
		pk.Timestamp = int64(binary.BigEndian.Uint64(ph[0:8]))
		pk.Flags = packet.TCPFlags(ph[8])
		pk.Seq = binary.BigEndian.Uint32(ph[9:13])
		pk.Ack = binary.BigEndian.Uint32(ph[13:17])
		pk.IPID = binary.BigEndian.Uint16(ph[17:19])
		pk.TTL = ph[19]
		pk.Window = binary.BigEndian.Uint16(ph[20:22])
		pk.PayloadLen = int(binary.BigEndian.Uint32(ph[22:26]))
		capLen := int(binary.BigEndian.Uint16(ph[26:28]))
		if capLen > maxCapturedPayload || capLen > pk.PayloadLen {
			return ErrCorrupt
		}
		p += packetHeaderLen
		if len(raw)-p < capLen+1 {
			return ErrCorrupt
		}
		if capLen > 0 {
			if cap(pk.Payload) >= capLen {
				pk.Payload = pk.Payload[:capLen]
			} else {
				pk.Payload = make([]byte, capLen)
			}
			copy(pk.Payload, raw[p:p+capLen])
		} else {
			pk.Payload = pk.Payload[:0]
		}
		pk.HasOptions = raw[p+capLen] == 1
		p += capLen + 1
	}
	if p != len(raw) {
		return ErrCorrupt
	}
	return nil
}
