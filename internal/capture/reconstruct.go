package capture

import (
	"sort"

	"tamperdetect/internal/packet"
)

// Reconstruct restores the likely arrival order of a connection's
// records despite the 1-second timestamp granularity (§3.2 constraint
// 2), using the headers: within each second, packets sort by their
// client-relative sequence position, with flag-based tiebreaks that
// encode TCP's natural ordering (a SYN precedes everything, a bare ACK
// at a given sequence precedes data at that sequence, tear-down packets
// come after the packet that triggered them).
//
// It returns a new slice; the connection is not modified.
func Reconstruct(c *Connection) []PacketRecord {
	return ReconstructInto(c, nil)
}

// insertionSortMax bounds the n² reorder path. Real records hold ~10
// packets, far below it; hostile records (up to 16384 packets) fall
// back to sort.SliceStable.
const insertionSortMax = 64

// ReconstructInto is Reconstruct with caller-owned result storage: the
// ordered packets are appended to dst[:0] and the (possibly grown)
// slice returned, so a consumer looping over many connections reorders
// with zero steady-state allocations. The connection is not modified.
func ReconstructInto(c *Connection, dst []PacketRecord) []PacketRecord {
	out := append(dst[:0], c.Packets...)
	if len(out) < 2 {
		return out
	}
	// The client ISN anchors relative sequence positions. Use the SYN
	// if present, else the smallest sequence number seen (sequence
	// wraparound within 10 packets is vanishingly rare).
	var isn uint32
	found := false
	for _, p := range out {
		if p.Flags.Has(packet.FlagSYN) {
			isn = p.Seq
			found = true
			break
		}
	}
	if !found {
		isn = out[0].Seq
		for _, p := range out[1:] {
			if int32(p.Seq-isn) < 0 {
				isn = p.Seq
			}
		}
	}
	if len(out) <= insertionSortMax {
		// Stable insertion sort: equal elements never swap, preserving
		// log order, and typical mostly-ordered records finish in near
		// linear time with no closure or reflection overhead.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && recordLess(&out[j], &out[j-1], isn); j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	sort.SliceStable(out, func(i, j int) bool {
		return recordLess(&out[i], &out[j], isn)
	})
	return out
}

// recordLess orders packets by arrival second, then by the rank key.
func recordLess(a, b *PacketRecord, isn uint32) bool {
	if a.Timestamp != b.Timestamp {
		return a.Timestamp < b.Timestamp
	}
	return rankOf(a, isn) < rankOf(b, isn)
}

// rankOf computes an ordering key for a packet within one second:
// primarily the relative sequence offset, with small flag biases.
func rankOf(p *PacketRecord, isn uint32) int64 {
	rel := int64(int32(p.Seq - isn)) // signed distance from ISN
	// Tear-down packets with sequence numbers below the ISN (e.g. a
	// forged RST+ACK answering a SYN carries seq 0) are responses, not
	// predecessors: pin them after the client's packets of the second.
	if p.Flags.IsRST() && rel < 0 {
		rel = 1 << 30
	}
	// Each sequence position is stretched by 8 so flag biases order
	// packets sharing a sequence number.
	key := rel * 8
	switch {
	case p.Flags.Has(packet.FlagSYN):
		key += 0
	case p.Flags.IsRST():
		// Tear-downs follow everything at their sequence position: an
		// injected RST lands at trigger.Seq+len, the same position as
		// the client's next in-flight segment, and arrived after it
		// left the client.
		key += 6
	case p.Flags.Has(packet.FlagFIN):
		key += 4
	case p.PayloadLen > 0:
		key += 2
	default: // bare ACK
		key += 1
	}
	return key
}
