package capture

import (
	"bytes"
	"math/rand/v2"
	"net/netip"
	"testing"
	"testing/quick"

	"tamperdetect/internal/packet"
)

// TestReconstructIsPermutationInvariant property-tests the core claim
// of §3.2: for connections whose packets have distinct order keys, any
// within-second logging order reconstructs to the same sequence.
func TestReconstructIsPermutationInvariant(t *testing.T) {
	base := []PacketRecord{
		{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 1000},
		{Timestamp: 0, Flags: packet.FlagsACK, Seq: 1001},
		{Timestamp: 0, Flags: packet.FlagsPSHACK, Seq: 1001, PayloadLen: 200},
		{Timestamp: 0, Flags: packet.FlagsACK, Seq: 1201},
		{Timestamp: 0, Flags: packet.FlagsRST, Seq: 1201, Ack: 7},
		{Timestamp: 0, Flags: packet.FlagsRST, Seq: 1201, Ack: 7},
	}
	want := Reconstruct(&Connection{Packets: base})
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xbeef))
		shuffled := append([]PacketRecord(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := Reconstruct(&Connection{Packets: shuffled})
		// The two equal-rank RSTs may swap among themselves; compare
		// flags+seq sequences, which are identical for them.
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Flags != want[i].Flags || got[i].Seq != want[i].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestReconstructPreservesMultiset checks no packet is lost or
// duplicated by reconstruction for arbitrary record sets.
func TestReconstructPreservesMultiset(t *testing.T) {
	f := func(raw []uint32, flagSel []uint8) bool {
		n := len(raw)
		if n > 10 {
			n = 10
		}
		recs := make([]PacketRecord, 0, n)
		for i := 0; i < n; i++ {
			fl := packet.FlagsACK
			if i < len(flagSel) {
				switch flagSel[i] % 4 {
				case 0:
					fl = packet.FlagsSYN
				case 1:
					fl = packet.FlagsPSHACK
				case 2:
					fl = packet.FlagsRST
				}
			}
			recs = append(recs, PacketRecord{Timestamp: int64(i / 3), Flags: fl, Seq: raw[i]})
		}
		out := Reconstruct(&Connection{Packets: recs})
		if len(out) != len(recs) {
			return false
		}
		// Multiset equality on (flags, seq).
		count := map[[2]uint64]int{}
		for _, r := range recs {
			count[[2]uint64{uint64(r.Flags), uint64(r.Seq)}]++
		}
		for _, r := range out {
			count[[2]uint64{uint64(r.Flags), uint64(r.Seq)}]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSamplerDeterministicSelection: the same flow is consistently
// kept or dropped at a given rate within one sampler instance.
func TestSamplerDeterministicSelection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rate = 3
	s := NewSampler(cfg)
	// Feed the same SYN many times interleaved with other flows; the
	// flow either exists with all its packets or not at all.
	for i := 0; i < 10; i++ {
		s.Inbound(0, buildPkt(t, "20.0.0.1", "192.0.2.1", 999, 443, packet.FlagsSYN, 0, nil))
		s.Inbound(0, buildPkt(t, "20.0.0.2", "192.0.2.1", uint16(i+1), 443, packet.FlagsSYN, 0, nil))
	}
	conns := s.Drain(0)
	for _, c := range conns {
		if c.SrcPort == 999 {
			if c.TotalPackets != 10 {
				t.Errorf("sampled flow recorded %d/10 packets", c.TotalPackets)
			}
		}
	}
}

// TestCodecQuickRoundTrip property-tests the TDCAP codec over random
// connection records.
func TestCodecQuickRoundTrip(t *testing.T) {
	f := func(srcBytes [4]byte, sport, dport uint16, ts int64, seq, ack uint32, flags uint8, payload []byte) bool {
		if len(payload) > 200 {
			payload = payload[:200]
		}
		in := &Connection{
			SrcIP: netip.AddrFrom4(srcBytes), DstIP: netip.MustParseAddr("192.0.2.80"),
			SrcPort: sport, DstPort: dport, IPVersion: 4,
			TotalPackets: 1, LastActivity: ts % 1e9, CloseTime: ts%1e9 + 30,
			Packets: []PacketRecord{{
				Timestamp: ts % 1e9, Flags: packet.TCPFlags(flags), Seq: seq, Ack: ack,
				PayloadLen: len(payload), Payload: append([]byte(nil), payload...),
			}},
		}
		if len(payload) == 0 {
			in.Packets[0].Payload = nil
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(in); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		out, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		return out.SrcIP == in.SrcIP && out.SrcPort == in.SrcPort &&
			out.Packets[0].Seq == seq && out.Packets[0].Ack == ack &&
			out.Packets[0].Flags == packet.TCPFlags(flags) &&
			string(out.Packets[0].Payload) == string(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
