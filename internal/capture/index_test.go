package capture

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
)

// encodeIndexedConns writes conns as an indexed capture (footer
// appended on Flush) at the given interval.
func encodeIndexedConns(t testing.TB, conns []*Connection, interval int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.EnableIndex(interval); err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// scanAllRecords runs a single Scanner over data and returns every raw
// record concatenated plus boundaries — the canonical byte-level view
// sharded scans are compared against.
func scanAllRecords(data []byte) (slab []byte, offs []int, err error) {
	sc := NewScanner(bytes.NewReader(data))
	offs = []int{0}
	for {
		next, nerr := sc.Next(slab)
		if nerr == io.EOF {
			return slab, offs, nil
		}
		if nerr != nil {
			return slab, offs, nerr
		}
		slab = next
		offs = append(offs, len(slab))
	}
}

// scanSegments drives every segment of src sequentially, returning the
// concatenated raw records (in file order) or the first error,
// including seam-check failures.
func scanSegments(src *SegmentedSource) ([]byte, []int, error) {
	var slab []byte
	offs := []int{0}
	for i := 0; i < src.Segments(); i++ {
		sc := src.Scanner(i)
		for {
			next, err := sc.Next(slab)
			if err == io.EOF {
				break
			}
			if err != nil {
				return slab, offs, err
			}
			slab = next
			offs = append(offs, len(slab))
		}
		if err := src.CheckSegment(i); err != nil {
			return slab, offs, err
		}
	}
	return slab, offs, nil
}

func indexEqual(a, b *Index) bool {
	if a.Interval != b.Interval || a.Records != b.Records ||
		a.DataSize != b.DataSize || a.FileSize != b.FileSize ||
		len(a.Offsets) != len(b.Offsets) {
		return false
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			return false
		}
	}
	return true
}

// TestWriterIndexFooter pins the whole footer path: an indexing Writer
// produces a capture whose footer decodes to exactly the index a
// one-pass BuildIndex scan reconstructs, and the footer is invisible
// to both streaming front ends.
func TestWriterIndexFooter(t *testing.T) {
	conns := scannerConns(t)
	plain := encodeConns(t, conns)
	indexed := encodeIndexedConns(t, conns, 2)

	if !bytes.HasPrefix(indexed, plain) {
		t.Fatal("indexed capture does not start with the plain capture bytes")
	}
	idx, err := ReadFooterIndex(bytes.NewReader(indexed), int64(len(indexed)))
	if err != nil {
		t.Fatalf("ReadFooterIndex: %v", err)
	}
	if idx.Records != len(conns) || idx.Interval != 2 || idx.DataSize != int64(len(plain)) {
		t.Fatalf("footer index %+v, want %d records interval 2 dataSize %d", idx, len(conns), len(plain))
	}
	built, err := BuildIndex(bytes.NewReader(plain), 2)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	if !indexEqual(idx, built) {
		t.Fatalf("footer %+v != built %+v", idx, built)
	}
	// BuildIndex over the *indexed* bytes must skip the footer and
	// reconstruct the same index.
	rebuilt, err := BuildIndex(bytes.NewReader(indexed), 2)
	if err != nil {
		t.Fatalf("BuildIndex over indexed capture: %v", err)
	}
	if !indexEqual(idx, rebuilt) {
		t.Fatalf("rebuilt over indexed bytes %+v != %+v", rebuilt, idx)
	}

	// Footer invisibility: both front ends read the indexed capture
	// identically to the plain one.
	for _, d := range [][]byte{plain, indexed} {
		if n, class := driveReader(d); n != len(conns) || class != "eof" {
			t.Fatalf("reader over %d bytes: %d records, %s", len(d), n, class)
		}
		if n, class := driveScanner(d); n != len(conns) || class != "eof" {
			t.Fatalf("scanner over %d bytes: %d records, %s", len(d), n, class)
		}
	}
	wantSlab, _, err := scanAllRecords(plain)
	if err != nil {
		t.Fatal(err)
	}
	gotSlab, _, err := scanAllRecords(indexed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantSlab, gotSlab) {
		t.Fatal("indexed capture scans to different record bytes")
	}
}

// TestWriterIndexFinalizes: after the footer is written, further
// records are refused rather than silently landing past the footer.
func TestWriterIndexFinalizes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.EnableIndex(4); err != nil {
		t.Fatal(err)
	}
	conns := scannerConns(t)
	if err := w.Write(conns[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(conns[0]); err == nil {
		t.Fatal("Write after indexed Flush succeeded")
	}
	if err := w.EnableIndex(4); err == nil {
		t.Fatal("EnableIndex after first record succeeded")
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("second Flush: %v", err)
	}
}

// TestSidecarRoundTrip pins the sidecar carrier: BuildIndex + FileSize
// + EncodeSidecar round-trips through DecodeSidecar, FindIndex locates
// nothing for a plain capture, and CheckFileSize flags staleness.
func TestSidecarRoundTrip(t *testing.T) {
	plain := encodeConns(t, scannerConns(t))
	idx, err := BuildIndex(bytes.NewReader(plain), 2)
	if err != nil {
		t.Fatal(err)
	}
	idx.FileSize = int64(len(plain))
	enc := EncodeSidecar(idx)
	dec, err := DecodeSidecar(enc)
	if err != nil {
		t.Fatalf("DecodeSidecar: %v", err)
	}
	if !indexEqual(idx, dec) {
		t.Fatalf("sidecar round trip: %+v != %+v", dec, idx)
	}
	if err := dec.CheckFileSize(int64(len(plain))); err != nil {
		t.Fatalf("CheckFileSize on matching size: %v", err)
	}
	if err := dec.CheckFileSize(int64(len(plain)) + 40); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("CheckFileSize on grown file: %v, want ErrStaleIndex", err)
	}
	if _, err := FindIndex(bytes.NewReader(plain), int64(len(plain)), ""); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("FindIndex on unindexed capture: %v, want ErrNoIndex", err)
	}
	// A footer index must never carry a sidecar FileSize and vice versa.
	if _, err := DecodeSidecar(EncodeSidecar(&Index{Interval: 1, DataSize: 8})); !errors.Is(err, ErrBadIndex) {
		t.Fatal("sidecar without FileSize accepted")
	}
}

// TestSegmentedSourceParity: for every shard count, scanning the
// segments back to back must reproduce the single-scanner byte stream
// exactly, and the aggregate BytesRead must equal the record area read
// by all shards together (the multi-source accounting fix).
func TestSegmentedSourceParity(t *testing.T) {
	conns := scannerConns(t)
	for _, interval := range []int{1, 2, 3} {
		indexed := encodeIndexedConns(t, conns, interval)
		want, wantOffs, err := scanAllRecords(indexed)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := ReadFooterIndex(bytes.NewReader(indexed), int64(len(indexed)))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4, 8, 64} {
			src, err := NewSegmentedSource(bytes.NewReader(indexed), int64(len(indexed)), idx, shards)
			if err != nil {
				t.Fatalf("interval %d shards %d: %v", interval, shards, err)
			}
			got, gotOffs, err := scanSegments(src)
			if err != nil {
				t.Fatalf("interval %d shards %d: %v", interval, shards, err)
			}
			if !bytes.Equal(want, got) || len(wantOffs) != len(gotOffs) {
				t.Fatalf("interval %d shards %d: sharded scan diverges from single scan", interval, shards)
			}
			if br := src.BytesRead(); br != idx.DataSize-8 {
				t.Fatalf("interval %d shards %d: aggregate BytesRead %d, want %d",
					interval, shards, br, idx.DataSize-8)
			}
		}
	}
}

// TestSegmentedSourceRejects pins the eager validation failures that
// trigger the single-scanner fallback: truncated file, stale sidecar,
// wrong magic, index past EOF.
func TestSegmentedSourceRejects(t *testing.T) {
	indexed := encodeIndexedConns(t, scannerConns(t), 2)
	idx, err := ReadFooterIndex(bytes.NewReader(indexed), int64(len(indexed)))
	if err != nil {
		t.Fatal(err)
	}
	// Index describing data beyond the file's end (file truncated
	// after indexing, or hostile DataSize).
	short := indexed[:idx.DataSize-4]
	if _, err := NewSegmentedSource(bytes.NewReader(short), int64(len(short)), idx, 4); !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("truncated file: %v, want ErrStaleIndex", err)
	}
	// Wrong magic.
	mut := append([]byte(nil), indexed...)
	mut[0] ^= 0xFF
	if _, err := NewSegmentedSource(bytes.NewReader(mut), int64(len(mut)), idx, 4); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v, want ErrBadMagic", err)
	}
	// Structurally invalid index.
	bad := *idx
	bad.Interval = 0
	if _, err := NewSegmentedSource(bytes.NewReader(indexed), int64(len(indexed)), &bad, 4); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("invalid index: %v, want ErrBadIndex", err)
	}
}

// TestSegmentSeamValidation crafts checksum-valid indexes that lie
// about boundaries — an offset landing mid-record, a wrong record
// count, offsets past the data area — and requires the segment scan to
// error rather than misparse. This is the runtime half of the "a
// corrupt index never produces wrong output" guarantee; the eager half
// is TestSegmentedSourceRejects.
func TestSegmentSeamValidation(t *testing.T) {
	indexed := encodeIndexedConns(t, scannerConns(t), 1)
	good, err := ReadFooterIndex(bytes.NewReader(indexed), int64(len(indexed)))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func(idx *Index)) {
		idx := *good
		idx.Offsets = append([]int64(nil), good.Offsets...)
		f(&idx)
		src, err := NewSegmentedSource(bytes.NewReader(indexed), int64(len(indexed)), &idx, 4)
		if err != nil {
			return // eager rejection is an acceptable outcome
		}
		slab, _, err := scanSegments(src)
		if err == nil {
			// A lying index that still scans cleanly must have produced
			// the exact single-scan bytes (e.g. a no-op mutation).
			want, _, werr := scanAllRecords(indexed)
			if werr != nil || !bytes.Equal(want, slab) {
				t.Errorf("%s: seam violation scanned cleanly with divergent output", name)
			}
			return
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadIndex) {
			t.Errorf("%s: error %v, want ErrCorrupt or ErrBadIndex", name, err)
		}
	}
	mutate("offset mid-record", func(idx *Index) { idx.Offsets[2]++ })
	mutate("offset early", func(idx *Index) { idx.Offsets[3] -= 2 })
	mutate("undercounted records", func(idx *Index) {
		idx.Records--
		idx.Offsets = idx.Offsets[:(idx.Records+idx.Interval-1)/idx.Interval]
	})
	mutate("short data area", func(idx *Index) { idx.DataSize -= 3 })
}

// TestIndexHostileSweep corrupts and truncates every byte of an
// indexed capture and requires, for each mutation: loading the index
// either fails (callers fall back to the single scanner — always
// safe), or the index it yields drives a segmented scan that is
// byte-identical to the single-scanner scan of the same mutated file,
// or that scan errors. Silent divergence is the one forbidden outcome.
func TestIndexHostileSweep(t *testing.T) {
	indexed := encodeIndexedConns(t, scannerConns(t), 2)
	check := func(mut []byte) {
		t.Helper()
		idx, err := FindIndex(bytes.NewReader(mut), int64(len(mut)), "")
		if err != nil {
			return // fallback path; nothing to compare
		}
		src, err := NewSegmentedSource(bytes.NewReader(mut), int64(len(mut)), idx, 4)
		if err != nil {
			return
		}
		got, _, err := scanSegments(src)
		if err != nil {
			return // surfaced error; caller reruns single-scanner
		}
		want, _, werr := scanAllRecords(mut)
		if werr != nil {
			// Sharded succeeded where single scan failed: only legal if
			// the failure is past all segment data (e.g. damaged footer
			// after intact records) and the records agree.
			if !bytes.Equal(want, got[:min(len(got), len(want))]) {
				t.Fatalf("sharded scan diverges from single-scan good prefix")
			}
			return
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("silent divergence: single scan %d bytes, sharded %d bytes", len(want), len(got))
		}
	}
	for cut := 0; cut <= len(indexed); cut++ {
		check(indexed[:cut])
	}
	for pos := 0; pos < len(indexed); pos++ {
		for _, v := range []byte{0x00, 0xFF, indexed[pos] ^ 0x80} {
			if v == indexed[pos] {
				continue
			}
			mut := append([]byte(nil), indexed...)
			mut[pos] = v
			check(mut)
		}
	}
}

// FuzzSegmentIndex feeds arbitrary bytes as a sidecar index for a
// fixed valid capture: decoding must never panic, must round-trip
// cleanly when it succeeds, and any index it accepts must drive a
// segmented scan to byte-parity with the full-file scan or to an
// error — never to silently different output.
func FuzzSegmentIndex(f *testing.F) {
	conns := []*Connection{}
	mk := scannerConnsForFuzz()
	conns = append(conns, mk...)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	capData := buf.Bytes()

	valid, err := BuildIndex(bytes.NewReader(capData), 1)
	if err != nil {
		f.Fatal(err)
	}
	valid.FileSize = int64(len(capData))
	f.Add(EncodeSidecar(valid))
	valid2 := *valid
	valid2.Interval = 2
	valid2.Offsets = nil
	for k := 0; k < valid.Records; k += 2 {
		valid2.Offsets = append(valid2.Offsets, valid.Offsets[k])
	}
	f.Add(EncodeSidecar(&valid2))
	trunc := EncodeSidecar(valid)
	f.Add(trunc[:len(trunc)-3])
	f.Add([]byte("TDXSDC01"))
	f.Add([]byte{})

	want, _, werr := scanAllRecords(capData)
	if werr != nil {
		f.Fatal(werr)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := DecodeSidecar(data)
		if err != nil {
			return
		}
		// Round trip: what decodes must re-encode to a decodable,
		// equal index.
		re, err := DecodeSidecar(EncodeSidecar(idx))
		if err != nil || !indexEqual(idx, re) {
			t.Fatalf("sidecar round trip broke: %v", err)
		}
		if err := idx.CheckFileSize(int64(len(capData))); err != nil {
			return
		}
		src, err := NewSegmentedSource(bytes.NewReader(capData), int64(len(capData)), idx, 4)
		if err != nil {
			return
		}
		got, _, err := scanSegments(src)
		if err != nil {
			return
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("hostile index produced divergent scan: %d vs %d bytes", len(got), len(want))
		}
	})
}

// scannerConnsForFuzz mirrors scannerConns without *testing.T (fuzz
// seeds run under *testing.F).
func scannerConnsForFuzz() []*Connection {
	var out []*Connection
	for i := 0; i < 6; i++ {
		out = append(out, &Connection{
			SrcIP:   netip.AddrFrom4([4]byte{20, 0, 0, byte(i + 1)}),
			DstIP:   netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)}),
			SrcPort: uint16(40000 + i), DstPort: 443, IPVersion: 4,
			TotalPackets: 1, LastActivity: int64(i), CloseTime: int64(i + 30),
			Packets: []PacketRecord{
				{Timestamp: int64(i), Seq: uint32(i), PayloadLen: 4, Payload: []byte{1, 2, 3, 4}},
			},
		})
	}
	return out
}

// synthIndex builds an index whose point-to-point chunks have the
// given byte sizes (one chunk per index point).
func synthIndex(t *testing.T, interval int, chunks []int64) *Index {
	t.Helper()
	idx := &Index{Interval: interval, Records: len(chunks) * interval}
	off := int64(8)
	for _, sz := range chunks {
		if sz < 1 {
			t.Fatal("chunk sizes must be positive")
		}
		idx.Offsets = append(idx.Offsets, off)
		off += sz
	}
	idx.DataSize = off
	if err := idx.validate(); err != nil {
		t.Fatalf("synthetic index invalid: %v", err)
	}
	return idx
}

// checkSegmentsCover asserts segs tile [8, DataSize) contiguously,
// start on index points, and account for every record.
func checkSegmentsCover(t *testing.T, idx *Index, segs []Segment) {
	t.Helper()
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	if segs[0].Start != 8 || segs[0].FirstRecord != 0 {
		t.Fatalf("first segment %+v does not start at the first record", segs[0])
	}
	records := 0
	for i, seg := range segs {
		if seg.End <= seg.Start {
			t.Fatalf("segment %d empty: %+v", i, seg)
		}
		if i > 0 {
			if seg.Start != segs[i-1].End {
				t.Fatalf("gap between segments %d and %d", i-1, i)
			}
			if seg.FirstRecord != segs[i-1].FirstRecord+segs[i-1].Records {
				t.Fatalf("record discontinuity at segment %d", i)
			}
		}
		records += seg.Records
	}
	if last := segs[len(segs)-1]; last.End != idx.DataSize {
		t.Fatalf("last segment ends at %d, data ends at %d", last.End, idx.DataSize)
	}
	if records != idx.Records {
		t.Fatalf("segments cover %d records, index has %d", records, idx.Records)
	}
}

// TestSegmentsBalanceBytes: with wildly variable record sizes, the
// split must balance byte ranges, not index-point counts. The first
// half of this capture is tiny records, the second half huge ones — a
// point-count split would give one scanner ~99% of the bytes.
func TestSegmentsBalanceBytes(t *testing.T) {
	chunks := make([]int64, 64)
	for i := range chunks {
		if i < 32 {
			chunks[i] = 100
		} else {
			chunks[i] = 10000
		}
	}
	idx := synthIndex(t, 16, chunks)
	for _, shards := range []int{2, 3, 4, 7, 8} {
		segs := idx.Segments(shards)
		if len(segs) != shards {
			t.Fatalf("shards=%d: got %d segments", shards, len(segs))
		}
		checkSegmentsCover(t, idx, segs)
		total := idx.DataSize - 8
		ideal := total / int64(shards)
		var maxChunk int64
		for _, c := range chunks {
			maxChunk = max(maxChunk, c)
		}
		for i, seg := range segs {
			size := seg.End - seg.Start
			if size > ideal+maxChunk {
				t.Errorf("shards=%d: segment %d holds %d bytes, ideal %d + max chunk %d",
					shards, i, size, ideal, maxChunk)
			}
		}
	}
}

// TestSegmentsUniformStaysBalanced: equal-size chunks split evenly,
// matching the old point-count behaviour.
func TestSegmentsUniformStaysBalanced(t *testing.T) {
	chunks := make([]int64, 40)
	for i := range chunks {
		chunks[i] = 500
	}
	idx := synthIndex(t, 8, chunks)
	segs := idx.Segments(4)
	if len(segs) != 4 {
		t.Fatalf("got %d segments", len(segs))
	}
	checkSegmentsCover(t, idx, segs)
	for i, seg := range segs {
		if size := seg.End - seg.Start; size != 10*500 {
			t.Errorf("segment %d spans %d bytes, want %d", i, size, 10*500)
		}
	}
}

// TestSegmentsEdgeCases: more shards than points, one point, one shard.
func TestSegmentsEdgeCases(t *testing.T) {
	idx := synthIndex(t, 4, []int64{100, 200, 300})
	segs := idx.Segments(10)
	if len(segs) != 3 {
		t.Fatalf("3 points across 10 shards: got %d segments", len(segs))
	}
	checkSegmentsCover(t, idx, segs)

	one := synthIndex(t, 4, []int64{1000})
	segs = one.Segments(5)
	if len(segs) != 1 {
		t.Fatalf("single point: got %d segments", len(segs))
	}
	checkSegmentsCover(t, one, segs)

	segs = idx.Segments(1)
	if len(segs) != 1 || segs[0].Start != 8 || segs[0].End != idx.DataSize {
		t.Fatalf("single shard must cover everything: %+v", segs)
	}
	if (&Index{Interval: 4}).Segments(3) != nil {
		t.Error("empty index yielded segments")
	}
	// Partial tail: last point covers fewer than Interval records.
	partial := synthIndex(t, 4, []int64{100, 100, 100})
	partial.Records = 9 // 4 + 4 + 1
	segs = partial.Segments(3)
	checkSegmentsCover(t, partial, segs)
}
