package capture

import (
	"bytes"
	"io"
	"net/netip"
	"testing"

	"tamperdetect/internal/packet"
)

// FuzzCodecReader feeds arbitrary bytes to the TDCAP reader; it must
// never panic and must bound its allocations by the declared counts.
func FuzzCodecReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write(&Connection{
		SrcIP: netip.MustParseAddr("20.0.0.1"), DstIP: netip.MustParseAddr("192.0.2.1"),
		SrcPort: 1, DstPort: 443, IPVersion: 4,
		Packets: []PacketRecord{{Flags: packet.FlagsSYN, Seq: 9}},
	})
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("TDCAP001garbage-after-magic"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			c, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(c.Packets) > 1<<14 {
				t.Fatal("packet count exceeds codec bound")
			}
		}
	})
}
