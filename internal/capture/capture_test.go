package capture

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"tamperdetect/internal/netsim"
	"tamperdetect/internal/packet"
)

// buildPkt serializes a client->server packet with given fields.
func buildPkt(t testing.TB, src, dst string, sport, dport uint16, flags packet.TCPFlags, seq uint32, payload []byte) []byte {
	t.Helper()
	ip := packet.IPv4{TTL: 60, ID: 5, Protocol: 6,
		SrcIP: netip.MustParseAddr(src), DstIP: netip.MustParseAddr(dst)}
	tcp := packet.TCP{SrcPort: sport, DstPort: dport, Seq: seq, Flags: flags, Window: 1000}
	tcp.SetNetworkLayerForChecksum(&ip)
	buf := packet.NewSerializeBuffer()
	if err := packet.SerializeLayers(buf, packet.SerializeOptions{FixLengths: true, ComputeChecksums: true},
		&ip, &tcp, packet.Payload(payload)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out
}

func TestSamplerRecordsConnection(t *testing.T) {
	s := NewSampler(DefaultConfig())
	at := netsim.Time(0)
	s.Inbound(at, buildPkt(t, "20.0.0.1", "192.0.2.1", 1234, 443, packet.FlagsSYN, 100, nil))
	s.Inbound(at.Add(time.Second), buildPkt(t, "20.0.0.1", "192.0.2.1", 1234, 443, packet.FlagsACK, 101, nil))
	s.Inbound(at.Add(2*time.Second), buildPkt(t, "20.0.0.1", "192.0.2.1", 1234, 443, packet.FlagsPSHACK, 101, []byte("hello")))
	conns := s.Drain(at.Add(10 * time.Second))
	if len(conns) != 1 {
		t.Fatalf("conns = %d, want 1", len(conns))
	}
	c := conns[0]
	if c.TotalPackets != 3 || len(c.Packets) != 3 {
		t.Errorf("counts = %d/%d, want 3/3", c.TotalPackets, len(c.Packets))
	}
	if c.Packets[2].PayloadLen != 5 || string(c.Packets[2].Payload) != "hello" {
		t.Errorf("payload record = %+v", c.Packets[2])
	}
	if c.LastActivity != 2 || c.CloseTime != 10 {
		t.Errorf("lastActivity/closeTime = %d/%d", c.LastActivity, c.CloseTime)
	}
	if s.Pending() != 0 {
		t.Error("sampler not reset after drain")
	}
}

func TestSamplerIgnoresMidFlowWithoutSYN(t *testing.T) {
	s := NewSampler(DefaultConfig())
	s.Inbound(0, buildPkt(t, "20.0.0.1", "192.0.2.1", 1, 443, packet.FlagsACK, 5, nil))
	s.Inbound(0, buildPkt(t, "20.0.0.1", "192.0.2.1", 1, 443, packet.FlagsPSHACK, 5, []byte("x")))
	if got := len(s.Drain(0)); got != 0 {
		t.Errorf("mid-flow packets created %d connections", got)
	}
}

func TestSamplerPacketCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPackets = 10
	s := NewSampler(cfg)
	s.Inbound(0, buildPkt(t, "20.0.0.1", "192.0.2.1", 1, 443, packet.FlagsSYN, 0, nil))
	for i := 1; i < 25; i++ {
		s.Inbound(netsim.Time(i)*netsim.Time(time.Second),
			buildPkt(t, "20.0.0.1", "192.0.2.1", 1, 443, packet.FlagsACK, uint32(i), nil))
	}
	c := s.Drain(netsim.Time(30 * time.Second))[0]
	if len(c.Packets) != 10 {
		t.Errorf("recorded %d packets, want 10", len(c.Packets))
	}
	if c.TotalPackets != 25 {
		t.Errorf("TotalPackets = %d, want 25", c.TotalPackets)
	}
	if c.LastActivity != 24 {
		t.Errorf("LastActivity = %d, want 24 (beyond the cap)", c.LastActivity)
	}
}

func TestSamplerPayloadCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPayload = 8
	s := NewSampler(cfg)
	s.Inbound(0, buildPkt(t, "20.0.0.1", "192.0.2.1", 1, 443, packet.FlagsSYN, 0, nil))
	long := make([]byte, 100)
	s.Inbound(0, buildPkt(t, "20.0.0.1", "192.0.2.1", 1, 443, packet.FlagsPSHACK, 1, long))
	c := s.Drain(0)[0]
	if len(c.Packets[1].Payload) != 8 || c.Packets[1].PayloadLen != 100 {
		t.Errorf("captured/full = %d/%d, want 8/100", len(c.Packets[1].Payload), c.Packets[1].PayloadLen)
	}
}

func TestSamplerRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rate = 4
	s := NewSampler(cfg)
	total := 4000
	for i := 0; i < total; i++ {
		src := netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 7})
		s.Inbound(0, buildPkt(t, src.String(), "192.0.2.1", uint16(1000+i%500), 443, packet.FlagsSYN, 0, nil))
	}
	got := len(s.Drain(0))
	want := total / 4
	if got < want*7/10 || got > want*13/10 {
		t.Errorf("sampled %d of %d at rate 4, want ≈%d", got, total, want)
	}
}

func TestSamplerTwoFlows(t *testing.T) {
	s := NewSampler(DefaultConfig())
	s.Inbound(0, buildPkt(t, "20.0.0.1", "192.0.2.1", 1, 443, packet.FlagsSYN, 0, nil))
	s.Inbound(0, buildPkt(t, "20.0.0.2", "192.0.2.1", 2, 443, packet.FlagsSYN, 0, nil))
	s.Inbound(0, buildPkt(t, "20.0.0.1", "192.0.2.1", 1, 443, packet.FlagsACK, 1, nil))
	conns := s.Drain(0)
	if len(conns) != 2 {
		t.Fatalf("conns = %d, want 2", len(conns))
	}
	if conns[0].TotalPackets != 2 || conns[1].TotalPackets != 1 {
		t.Errorf("per-flow counts = %d/%d, want 2/1", conns[0].TotalPackets, conns[1].TotalPackets)
	}
}

func TestReconstructOrdersWithinSecond(t *testing.T) {
	// Log order scrambled within the same second; sequence numbers and
	// flags must restore SYN, ACK, PSH, RST.
	c := &Connection{
		Packets: []PacketRecord{
			{Timestamp: 0, Flags: packet.FlagsPSHACK, Seq: 101, PayloadLen: 50},
			{Timestamp: 0, Flags: packet.FlagsRST, Seq: 151},
			{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100},
			{Timestamp: 0, Flags: packet.FlagsACK, Seq: 101},
		},
	}
	out := Reconstruct(c)
	want := []packet.TCPFlags{packet.FlagsSYN, packet.FlagsACK, packet.FlagsPSHACK, packet.FlagsRST}
	for i, w := range want {
		if out[i].Flags != w {
			t.Fatalf("position %d = %v, want %v (full: %v)", i, out[i].Flags, w, flagsOf(out))
		}
	}
}

func TestReconstructRespectsTimestamps(t *testing.T) {
	// A later-second packet with a smaller seq (e.g. keep-alive ACK
	// retransmission) must stay after earlier seconds.
	c := &Connection{
		Packets: []PacketRecord{
			{Timestamp: 0, Flags: packet.FlagsSYN, Seq: 100},
			{Timestamp: 1, Flags: packet.FlagsPSHACK, Seq: 101, PayloadLen: 10},
			{Timestamp: 2, Flags: packet.FlagsACK, Seq: 101},
		},
	}
	out := Reconstruct(c)
	if out[2].Timestamp != 2 {
		t.Errorf("cross-second reorder happened: %v", flagsOf(out))
	}
}

func TestReconstructWithoutSYN(t *testing.T) {
	// Mid-flow capture: lowest seq anchors.
	c := &Connection{
		Packets: []PacketRecord{
			{Timestamp: 0, Flags: packet.FlagsPSHACK, Seq: 5000, PayloadLen: 10},
			{Timestamp: 0, Flags: packet.FlagsPSHACK, Seq: 4000, PayloadLen: 10},
		},
	}
	out := Reconstruct(c)
	if out[0].Seq != 4000 {
		t.Errorf("lowest-seq packet not first: %v", out)
	}
}

func TestReconstructStableForTies(t *testing.T) {
	c := &Connection{
		Packets: []PacketRecord{
			{Timestamp: 0, Flags: packet.FlagsRST, Seq: 200, Ack: 1},
			{Timestamp: 0, Flags: packet.FlagsRST, Seq: 200, Ack: 2},
		},
	}
	out := Reconstruct(c)
	if out[0].Ack != 1 || out[1].Ack != 2 {
		t.Error("equal-rank packets reordered (sort not stable)")
	}
}

func TestShuffleThenReconstructRoundTrip(t *testing.T) {
	// Property: with ShuffleWithinSecond enabled, Reconstruct recovers
	// the canonical order of a normal connection for any shuffle seed.
	for seed := uint64(0); seed < 30; seed++ {
		cfg := DefaultConfig()
		cfg.ShuffleWithinSecond = rand.New(rand.NewPCG(seed, seed))
		s := NewSampler(cfg)
		// All within one second: worst case for ordering.
		s.Inbound(0, buildPkt(t, "20.0.0.9", "192.0.2.1", 9, 443, packet.FlagsSYN, 1000, nil))
		s.Inbound(0, buildPkt(t, "20.0.0.9", "192.0.2.1", 9, 443, packet.FlagsACK, 1001, nil))
		s.Inbound(0, buildPkt(t, "20.0.0.9", "192.0.2.1", 9, 443, packet.FlagsPSHACK, 1001, []byte("0123456789")))
		s.Inbound(0, buildPkt(t, "20.0.0.9", "192.0.2.1", 9, 443, packet.FlagsRST, 1011, nil))
		c := s.Drain(0)[0]
		out := Reconstruct(c)
		want := []packet.TCPFlags{packet.FlagsSYN, packet.FlagsACK, packet.FlagsPSHACK, packet.FlagsRST}
		for i, w := range want {
			if out[i].Flags != w {
				t.Fatalf("seed %d: position %d = %v, want %v", seed, i, out[i].Flags, w)
			}
		}
	}
}

func flagsOf(recs []PacketRecord) []string {
	var out []string
	for _, r := range recs {
		out = append(out, r.Flags.String())
	}
	return out
}

func TestDrainIdle(t *testing.T) {
	s := NewSampler(DefaultConfig())
	s.Inbound(0, buildPkt(t, "20.0.0.1", "192.0.2.1", 1, 443, packet.FlagsSYN, 0, nil))
	s.Inbound(netsim.Time(100*time.Second), buildPkt(t, "20.0.0.2", "192.0.2.1", 2, 443, packet.FlagsSYN, 0, nil))

	idle := s.DrainIdle(netsim.Time(110*time.Second), 60)
	if len(idle) != 1 || idle[0].SrcPort != 1 {
		t.Fatalf("idle drain = %d conns", len(idle))
	}
	if idle[0].CloseTime != 110 {
		t.Errorf("CloseTime = %d, want 110", idle[0].CloseTime)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want the active flow kept", s.Pending())
	}
	// A packet for the evicted flow does not resurrect it (no SYN).
	s.Inbound(netsim.Time(111*time.Second), buildPkt(t, "20.0.0.1", "192.0.2.1", 1, 443, packet.FlagsACK, 1, nil))
	if s.Pending() != 1 {
		t.Errorf("evicted flow resurrected")
	}
	rest := s.Drain(netsim.Time(120 * time.Second))
	if len(rest) != 1 || rest[0].SrcPort != 2 {
		t.Errorf("final drain = %d conns", len(rest))
	}
}
