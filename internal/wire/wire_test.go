package wire

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, math.MaxUint64)
	b = AppendVarint(b, -1)
	b = AppendVarint(b, math.MaxInt64)
	b = AppendVarint(b, math.MinInt64)
	b = AppendFloat64(b, 3.5)
	b = AppendFloat64(b, math.Inf(-1))
	b = AppendString(b, "")
	b = AppendString(b, "pop-α")
	b = AppendBytes(b, []byte{1, 2, 3})

	d := NewDecoder(b)
	if v := d.Uvarint(); v != 0 {
		t.Errorf("uvarint = %d, want 0", v)
	}
	if v := d.Uvarint(); v != math.MaxUint64 {
		t.Errorf("uvarint = %d, want max", v)
	}
	if v := d.Varint(); v != -1 {
		t.Errorf("varint = %d, want -1", v)
	}
	if v := d.Varint(); v != math.MaxInt64 {
		t.Errorf("varint = %d, want maxint64", v)
	}
	if v := d.Varint(); v != math.MinInt64 {
		t.Errorf("varint = %d, want minint64", v)
	}
	if v := d.Float64(); v != 3.5 {
		t.Errorf("float = %v, want 3.5", v)
	}
	if v := d.Float64(); !math.IsInf(v, -1) {
		t.Errorf("float = %v, want -inf", v)
	}
	if v := d.String(16); v != "" {
		t.Errorf("string = %q, want empty", v)
	}
	if v := d.String(16); v != "pop-α" {
		t.Errorf("string = %q", v)
	}
	if v := d.Bytes(16); len(v) != 3 || v[0] != 1 {
		t.Errorf("bytes = %v", v)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestTruncation(t *testing.T) {
	full := AppendString(AppendUvarint(nil, 300), "hello")
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.Uvarint()
		d.String(16)
		if err := d.Done(); err == nil {
			t.Errorf("cut=%d: truncated input decoded cleanly", cut)
		}
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder(nil)
	if d.Uvarint() != 0 || d.Err() == nil {
		t.Fatal("empty decode should poison the decoder")
	}
	first := d.Err()
	d.Float64()
	d.String(4)
	if d.Err() != first {
		t.Errorf("error not sticky: %v then %v", first, d.Err())
	}
}

func TestBoundedLen(t *testing.T) {
	// A count far larger than the remaining input must be rejected
	// before any allocation.
	b := AppendUvarint(nil, 1<<40)
	d := NewDecoder(b)
	if n := d.Len(1<<50, 4); n != 0 || d.Err() == nil {
		t.Errorf("oversized count accepted: n=%d err=%v", n, d.Err())
	}

	// A count within both the limit and the remaining input passes.
	b = AppendUvarint(nil, 3)
	b = append(b, make([]byte, 12)...)
	d = NewDecoder(b)
	if n := d.Len(10, 4); n != 3 || d.Err() != nil {
		t.Errorf("valid count rejected: n=%d err=%v", n, d.Err())
	}

	// Explicit caps bind even when the input is long enough.
	d = NewDecoder(b)
	if n := d.Len(2, 1); n != 0 || d.Err() == nil {
		t.Errorf("cap ignored: n=%d err=%v", n, d.Err())
	}
}

func TestOversizedString(t *testing.T) {
	b := AppendString(nil, "abcdefgh")
	d := NewDecoder(b)
	if s := d.String(4); s != "" || d.Err() == nil {
		t.Errorf("oversized string accepted: %q err=%v", s, d.Err())
	}
}

func TestTrailing(t *testing.T) {
	d := NewDecoder([]byte{0, 1, 2})
	d.Uvarint()
	if err := d.Done(); !errors.Is(err, ErrTrailing) {
		t.Errorf("Done = %v, want ErrTrailing", err)
	}
}

func TestNegativeInt(t *testing.T) {
	b := AppendVarint(nil, -5)
	d := NewDecoder(b)
	if v := d.Int(); v != 0 || d.Err() == nil {
		t.Errorf("negative count accepted: %d err=%v", v, d.Err())
	}
}
