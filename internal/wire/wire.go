// Package wire provides the append-style binary primitives behind the
// fleet snapshot codec: unsigned/signed varints, IEEE-754 floats, and
// length-prefixed byte strings, plus a strict bounded Decoder for
// untrusted input.
//
// Encoding is the allocation-friendly append idiom (each Append*
// returns the extended slice). Decoding is defensive by construction:
// the Decoder carries a sticky error, every length and count is
// validated against the bytes actually remaining before anything is
// allocated, and a successful decode can require the input to be fully
// consumed (Done). A malformed or adversarial frame can therefore
// produce an error, never a panic, an overflow, or an attacker-sized
// allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports input that ended before the value it promised.
var ErrTruncated = errors.New("wire: truncated input")

// ErrTrailing reports undecoded bytes after a frame that must consume
// its whole input.
var ErrTrailing = errors.New("wire: trailing bytes after frame")

// AppendUvarint appends v in unsigned LEB128.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v in zig-zag LEB128.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendFloat64 appends v as its IEEE-754 bits, little-endian.
func AppendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendString appends a uvarint length followed by the bytes of s.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a uvarint length followed by p.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// Decoder reads the primitives back out of one buffer. The zero-value
// rule: after any failure the decoder is poisoned (Err returns the
// first error) and every subsequent read returns a zero value, so
// call sites can decode a whole frame linearly and check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over data. The decoder aliases data;
// Bytes results alias it too.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many undecoded bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// fail poisons the decoder with its first error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint decodes one unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.off += n
	return v
}

// Varint decodes one zig-zag varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrTruncated)
		return 0
	}
	d.off += n
	return v
}

// Int decodes a varint that must fit a non-negative int (counters).
func (d *Decoder) Int() int {
	v := d.Varint()
	if d.err != nil {
		return 0
	}
	if v < 0 || v > math.MaxInt64 || int64(int(v)) != v {
		d.fail(fmt.Errorf("wire: count %d out of range", v))
		return 0
	}
	return int(v)
}

// Float64 decodes IEEE-754 bits.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// Len decodes a collection length and bounds it: at most max entries,
// and — since every entry encodes to at least minEntryBytes — no more
// entries than the remaining input could possibly hold. This is the
// guard that keeps adversarial counts from driving allocations.
func (d *Decoder) Len(max, minEntryBytes int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minEntryBytes < 1 {
		minEntryBytes = 1
	}
	if n > uint64(max) {
		d.fail(fmt.Errorf("wire: count %d exceeds limit %d", n, max))
		return 0
	}
	if n > uint64(d.Remaining()/minEntryBytes) {
		d.fail(fmt.Errorf("wire: count %d exceeds remaining input (%d bytes)", n, d.Remaining()))
		return 0
	}
	return int(n)
}

// String decodes a length-prefixed string of at most max bytes.
func (d *Decoder) String(max int) string {
	return string(d.bytesInternal(max))
}

// Bytes decodes a length-prefixed byte string of at most max bytes.
// The result aliases the decoder's input.
func (d *Decoder) Bytes(max int) []byte {
	return d.bytesInternal(max)
}

func (d *Decoder) bytesInternal(max int) []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(max) {
		d.fail(fmt.Errorf("wire: length %d exceeds limit %d", n, max))
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(ErrTruncated)
		return nil
	}
	out := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// Done requires the input to be fully consumed and returns the
// decoder's final status.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, d.Remaining())
	}
	return nil
}
