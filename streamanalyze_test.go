package tamperdetect

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/workload"
)

// streamAnalyzeCapture builds a fixed-seed scenario once and returns
// its connections, encoded TDCAP bytes, and geo plan.
func streamAnalyzeCapture(t *testing.T) ([]*capture.Connection, []byte, *GeoDB) {
	t.Helper()
	s, err := workload.BuildScenario("public-streamanalyze", 1500, 48, 7)
	if err != nil {
		t.Fatalf("BuildScenario: %v", err)
	}
	conns := s.Run(0)
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return conns, buf.Bytes(), s.Geo
}

// TestStreamAnalyzeMatchesBatch proves the public one-pass entry point
// reproduces the batch tables exactly, at every worker count: the
// aggregators are pure functions of the record multiset, so the
// worker assignment cannot change the result.
func TestStreamAnalyzeMatchesBatch(t *testing.T) {
	conns, data, db := streamAnalyzeCapture(t)

	recs := analysis.Analyze(conns, db, core.NewClassifier(core.DefaultConfig()), 0)
	wantStages := analysis.ComputeStageStats(recs)
	wantSigs := analysis.SignatureByCountry(recs)

	for _, workers := range []int{1, 4} {
		agg, counts, err := StreamAnalyze(context.Background(), bytes.NewReader(data),
			StreamConfig{Workers: workers}, db,
			func() Aggregator {
				return AggMulti{NewStageStatsAgg(), NewSignatureByCountryAgg()}
			})
		if err != nil {
			t.Fatalf("workers=%d: StreamAnalyze: %v", workers, err)
		}
		if counts.Classified != int64(len(conns)) {
			t.Errorf("workers=%d: classified %d of %d", workers, counts.Classified, len(conns))
		}
		m := agg.(AggMulti)
		if got := m[0].(*StageStatsAgg).Stats(); !reflect.DeepEqual(got, wantStages) {
			t.Errorf("workers=%d: stage stats diverge from batch\ngot  %+v\nwant %+v", workers, got, wantStages)
		}
		if got := m[1].(*SignatureByCountryAgg).Table(); !reflect.DeepEqual(got, wantSigs) {
			t.Errorf("workers=%d: signature-by-country diverges from batch", workers)
		}
	}
}

// TestStreamAnalyzeNilDB checks geography-free analysis works and the
// default worker count kicks in.
func TestStreamAnalyzeNilDB(t *testing.T) {
	conns, data, _ := streamAnalyzeCapture(t)
	agg, counts, err := StreamAnalyze(context.Background(), bytes.NewReader(data),
		StreamConfig{}, nil,
		func() Aggregator { return NewStageStatsAgg() })
	if err != nil {
		t.Fatalf("StreamAnalyze: %v", err)
	}
	if counts.Classified != int64(len(conns)) {
		t.Errorf("classified %d of %d", counts.Classified, len(conns))
	}
	stats := agg.(*StageStatsAgg).Stats()
	if stats.Total != len(conns) {
		t.Errorf("aggregated %d of %d records", stats.Total, len(conns))
	}
}
