package tamperdetect

// This file holds the benchmark harness that regenerates every paper
// table and figure (run `go test -bench=. -benchmem`), one benchmark
// per experiment, plus the ablation benches DESIGN.md calls out. Each
// experiment benchmark builds its dataset once (shared across benches)
// and times the aggregation that produces the table/figure, reporting
// the headline statistic as a custom metric so a bench run doubles as
// a results table.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/netip"
	"runtime"
	"sync"
	"testing"

	"tamperdetect/internal/analysis"
	"tamperdetect/internal/capture"
	"tamperdetect/internal/core"
	"tamperdetect/internal/domains"
	"tamperdetect/internal/geo"
	"tamperdetect/internal/pipeline"
	"tamperdetect/internal/testlists"
	"tamperdetect/internal/trace"
	"tamperdetect/internal/workload"
)

// benchDataset is built once and shared by the experiment benchmarks.
var (
	benchOnce  sync.Once
	benchScen  *workload.Scenario
	benchConns []*capture.Connection
	benchRecs  []analysis.Record
)

func benchData(b *testing.B) ([]*capture.Connection, []analysis.Record, *workload.Scenario) {
	b.Helper()
	benchOnce.Do(func() {
		s, err := workload.BuildScenario("bench", 20000, 14*24, 2023)
		if err != nil {
			b.Fatalf("BuildScenario: %v", err)
		}
		benchScen = s
		benchConns = s.Run(0)
		benchRecs = analysis.Analyze(benchConns, s.Geo, core.NewClassifier(core.DefaultConfig()), 0)
	})
	if benchScen == nil {
		b.Fatal("bench dataset failed to build")
	}
	return benchConns, benchRecs, benchScen
}

// BenchmarkScenarioSimulation times the full substrate: packet-level
// simulation of client/censor/server plus capture, per connection.
func BenchmarkScenarioSimulation(b *testing.B) {
	s, err := workload.BuildScenario("bench-sim", 2000, 24, 7)
	if err != nil {
		b.Fatal(err)
	}
	specs := s.Specs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := specs[i%len(specs)]
		if workload.SimulateConn(&spec, s.Universe, s.CaptureConfig, s.Impairments) == nil {
			b.Fatal("connection not sampled")
		}
	}
}

// BenchmarkClassify times the core classifier per connection.
func BenchmarkClassify(b *testing.B) {
	conns, _, _ := benchData(b)
	cl := core.NewClassifier(core.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cl.Classify(conns[i%len(conns)])
	}
}

// BenchmarkTable1StageBreakdown regenerates §4.1's stage statistics.
func BenchmarkTable1StageBreakdown(b *testing.B) {
	_, recs, _ := benchData(b)
	var s analysis.StageStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = analysis.ComputeStageStats(recs)
	}
	b.ReportMetric(100*s.PossiblyTamperedShare(), "possibly-tampered-%")
	b.ReportMetric(100*s.SignatureCoverage(), "signature-coverage-%")
}

// BenchmarkFigure1CountryComposition regenerates Figure 1.
func BenchmarkFigure1CountryComposition(b *testing.B) {
	_, recs, _ := benchData(b)
	var comps []analysis.SignatureComposition
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comps = analysis.CountryBySignature(recs)
	}
	b.ReportMetric(float64(len(comps)), "signatures")
}

// BenchmarkFigure2IPIDCDF regenerates Figure 2.
func BenchmarkFigure2IPIDCDF(b *testing.B) {
	_, recs, _ := benchData(b)
	var cdfs analysis.EvidenceCDFs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdfs = analysis.ComputeEvidenceCDFs(recs, 1000)
	}
	if base := cdfs.IPID[core.SigNotTampering]; base != nil {
		b.ReportMetric(100*base.At(1), "baseline-P(delta<=1)-%")
	}
}

// BenchmarkFigure3TTLCDF regenerates Figure 3 (same computation over
// the TTL dimension; kept separate to mirror the paper's figures).
func BenchmarkFigure3TTLCDF(b *testing.B) {
	_, recs, _ := benchData(b)
	var cdfs analysis.EvidenceCDFs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdfs = analysis.ComputeEvidenceCDFs(recs, 1000)
	}
	if c := cdfs.TTL[core.SigPSHRSTNeqRST]; c != nil && c.Len() > 0 {
		b.ReportMetric(100*(1-c.At(10)), "RSTneq-P(ttl-delta>10)-%")
	}
}

// BenchmarkFigure4SignatureByCountry regenerates Figure 4.
func BenchmarkFigure4SignatureByCountry(b *testing.B) {
	_, recs, _ := benchData(b)
	var ds []analysis.CountryDistribution
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds = analysis.SignatureByCountry(recs)
	}
	for _, d := range ds {
		if d.Country == "TM" {
			b.ReportMetric(100*d.TamperedShare(), "TM-tampered-%")
		}
	}
}

// BenchmarkFigure5ASNView regenerates Figure 5's per-AS views.
func BenchmarkFigure5ASNView(b *testing.B) {
	_, recs, _ := benchData(b)
	var spreadCN, spreadRU float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spreadCN = analysis.SpreadOfASNView(analysis.ASNView(recs, "CN"))
		spreadRU = analysis.SpreadOfASNView(analysis.ASNView(recs, "RU"))
	}
	b.ReportMetric(100*spreadCN, "CN-spread-pp")
	b.ReportMetric(100*spreadRU, "RU-spread-pp")
}

// BenchmarkFigure6TimeSeries regenerates Figure 6's longitudinal
// Post-ACK/Post-PSH series for the six countries of interest.
func BenchmarkFigure6TimeSeries(b *testing.B) {
	_, recs, _ := benchData(b)
	countries := []string{"CN", "DE", "GB", "IN", "IR", "RU", "US"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range countries {
			c := c
			_ = analysis.TimeSeries(recs, 1,
				func(r *analysis.Record) bool { return r.Country == c },
				analysis.PostACKPSHMatch)
		}
	}
}

// BenchmarkFigure7VersionAndProtocol regenerates Figures 7a and 7b.
func BenchmarkFigure7VersionAndProtocol(b *testing.B) {
	_, recs, _ := benchData(b)
	var slopeV, slopeP float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, slopeV = analysis.IPVersionCompare(recs, 50)
		_, slopeP = analysis.ProtocolCompare(recs, 30)
	}
	b.ReportMetric(slopeV, "fig7a-slope")
	b.ReportMetric(slopeP, "fig7b-slope")
}

// BenchmarkTable2Categories regenerates Table 2 for the paper's
// regions.
func BenchmarkTable2Categories(b *testing.B) {
	_, recs, scen := benchData(b)
	regions := []string{"", "CN", "DE", "GB", "IN", "IR", "KR", "MX", "PE", "RU", "US"}
	var global analysis.CategoryTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range regions {
			t := analysis.ComputeCategoryTable(recs, scen.Universe, r, 2)
			if r == "" {
				global = t
			}
		}
	}
	if len(global.Rows) > 0 {
		b.ReportMetric(100*global.Rows[0].TamperedShare, "global-top-category-%")
	}
}

// BenchmarkTable3ListCoverage regenerates Table 3.
func BenchmarkTable3ListCoverage(b *testing.B) {
	_, recs, scen := benchData(b)
	sensitive := func(d *domains.Domain) bool {
		switch d.Category {
		case domains.AdultThemes, domains.News, domains.SocialNetworks, domains.Chat:
			return true
		default:
			return false
		}
	}
	suite := testlists.BuildSuite(scen.Universe, sensitive, testlists.DefaultBuildConfig())
	regions := []string{"", "CN", "IN", "IR", "KR", "MX", "PE", "RU", "US"}
	var rows []analysis.ListCoverageRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = analysis.ListCoverageTable(recs, suite, regions, 2)
	}
	for _, r := range rows {
		if r.ListName == "Union: Citizenlab + Greatfire" {
			b.ReportMetric(100*r.Exact["CN"], "curated-CN-coverage-%")
		}
	}
}

// BenchmarkFigure8Iran2022 regenerates the §5.6 case study end to end
// (its own scenario, so the simulation cost is inside the loop).
func BenchmarkFigure8Iran2022(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := workload.Iran2022Scenario(3000, uint64(2022+i))
		if err != nil {
			b.Fatal(err)
		}
		conns := s.Run(0)
		recs := analysis.Analyze(conns, s.Geo, core.NewClassifier(core.DefaultConfig()), 0)
		_ = analysis.TimeSeries(recs, 24, nil, analysis.AnySignatureMatch)
	}
}

// BenchmarkFigure9PerSignatureSeries regenerates Appendix A's
// per-signature series.
func BenchmarkFigure9PerSignatureSeries(b *testing.B) {
	_, recs, _ := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sig := range core.AllSignatures() {
			sig := sig
			_ = analysis.TimeSeries(recs, 6, nil,
				func(r *analysis.Record) bool { return r.Res.Signature == sig })
		}
	}
}

// BenchmarkFigure10OverlapMatrix regenerates Appendix B's IP-domain
// consistency matrix.
func BenchmarkFigure10OverlapMatrix(b *testing.B) {
	_, recs, _ := benchData(b)
	var m analysis.OverlapMatrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = analysis.ComputeOverlapMatrix(recs)
	}
	b.ReportMetric(m.DiagonalMass(), "diagonal-mass")
}

// BenchmarkScannerValidation regenerates the §4.2 numbers.
func BenchmarkScannerValidation(b *testing.B) {
	conns, recs, _ := benchData(b)
	var s analysis.ScannerStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = analysis.ComputeScannerStats(recs, conns)
	}
	if s.SYNRSTMatches > 0 {
		b.ReportMetric(100*float64(s.SYNRSTZMap)/float64(s.SYNRSTMatches), "zmap-share-of-SYNRST-%")
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationReconstruction measures the value of header-based
// order reconstruction: the fraction of shuffled tampered connections
// whose signature changes when classification trusts log order.
func BenchmarkAblationReconstruction(b *testing.B) {
	conns, _, _ := benchData(b)
	cl := core.NewClassifier(core.DefaultConfig())
	changed, total := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := conns[i%len(conns)]
		ordered := cl.Classify(c)
		// Degrade: pretend all packets share one second, destroying
		// cross-second ordering information, then classify the raw log
		// order via a copy whose timestamps defeat reconstruction.
		degraded := *c
		degraded.Packets = append([]capture.PacketRecord(nil), c.Packets...)
		for j := range degraded.Packets {
			degraded.Packets[j].Timestamp = 0
			degraded.Packets[j].Seq = 0 // no sequence hints either
		}
		raw := cl.Classify(&degraded)
		total++
		if raw.Signature != ordered.Signature {
			changed++
		}
	}
	b.ReportMetric(100*float64(changed)/float64(total), "verdict-change-%")
}

// BenchmarkAblationCaptureDepth sweeps the first-N-packets cap and
// reports the Post-Data signature loss at N=6 versus the paper's N=10.
func BenchmarkAblationCaptureDepth(b *testing.B) {
	conns, _, _ := benchData(b)
	count := func(cl *core.Classifier, depth int) int {
		n := 0
		for _, c := range conns {
			truncated := *c
			if len(c.Packets) > depth {
				truncated.Packets = c.Packets[:depth]
			}
			r := cl.Classify(&truncated)
			if r.Signature.Stage() == core.StagePostData {
				n++
			}
		}
		return n
	}
	var at6, at10 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl6 := core.NewClassifier(core.Config{MaxPackets: 6})
		cl10 := core.NewClassifier(core.Config{MaxPackets: 10})
		at6 = count(cl6, 6)
		at10 = count(cl10, 10)
	}
	if at10 > 0 {
		b.ReportMetric(100*float64(at6)/float64(at10), "postdata-retained-at-depth6-%")
	}
}

// BenchmarkAblationSamplingRate compares per-country tampering
// estimates at 1-in-4 sampling against the full dataset, reporting the
// worst absolute error across major countries.
func BenchmarkAblationSamplingRate(b *testing.B) {
	conns, recs, scen := benchData(b)
	full := map[string]float64{}
	for _, d := range analysis.SignatureByCountry(recs) {
		full[d.Country] = d.TamperedShare()
	}
	rng := rand.New(rand.NewPCG(5, 5))
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampled := make([]*capture.Connection, 0, len(conns)/4)
		for _, c := range conns {
			if rng.IntN(4) == 0 {
				sampled = append(sampled, c)
			}
		}
		srecs := analysis.Analyze(sampled, scen.Geo, core.NewClassifier(core.DefaultConfig()), 0)
		worst = 0
		for _, d := range analysis.SignatureByCountry(srecs) {
			if d.Total < 100 {
				continue
			}
			err := d.TamperedShare() - full[d.Country]
			if err < 0 {
				err = -err
			}
			if err > worst {
				worst = err
			}
		}
	}
	b.ReportMetric(100*worst, "worst-country-error-pp")
}

// BenchmarkPipelineThroughput measures the streaming classification
// pipeline end to end — TDCAP decode, classifier worker pool, counting
// sink — in connections/sec at 1 worker and at NumCPU workers. This is
// the perf baseline every later scaling PR (sharding, live ingest)
// compares against; current numbers live in EXPERIMENTS.md.
func BenchmarkPipelineThroughput(b *testing.B) {
	conns, _, _ := benchData(b)
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	workerCounts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			classified := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				counts, err := pipeline.Stream(context.Background(),
					bytes.NewReader(data), pipeline.Config{Workers: workers}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if counts.Classified != int64(len(conns)) {
					b.Fatalf("classified %d of %d", counts.Classified, len(conns))
				}
				classified += counts.Classified
			}
			b.ReportMetric(float64(classified)/b.Elapsed().Seconds(), "conns/sec")
		})
	}
}

// BenchmarkStreamPipeline is the recorded perf-trajectory benchmark:
// the full streaming path (TDCAP decode, batched classifier workers,
// counting sink) across the workers × batch grid that
// scripts/bench.sh aggregates into BENCH_pipeline.json. Each
// connection record in the capture is one "record"; the custom
// metrics (conns/sec, ns/record, B/record, allocs/record) are the
// units EXPERIMENTS.md's Performance section tracks across PRs.
func BenchmarkStreamPipeline(b *testing.B) {
	conns, _, _ := benchData(b)
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, workers := range []int{1, 4, 16} {
		for _, batch := range []int{1, 64} {
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				b.ReportAllocs()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				classified := int64(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					counts, err := pipeline.Stream(context.Background(),
						bytes.NewReader(data),
						pipeline.Config{Workers: workers, BatchSize: batch}, nil)
					if err != nil {
						b.Fatal(err)
					}
					if counts.Classified != int64(len(conns)) {
						b.Fatalf("classified %d of %d", counts.Classified, len(conns))
					}
					classified += counts.Classified
				}
				b.StopTimer()
				runtime.ReadMemStats(&after)
				records := float64(classified)
				b.ReportMetric(records/b.Elapsed().Seconds(), "conns/sec")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/records, "ns/record")
				b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/records, "B/record")
				b.ReportMetric(float64(after.Mallocs-before.Mallocs)/records, "allocs/record")
			})
		}
	}
}

// BenchmarkDecodeParallel measures the decode-parallel front end
// against the sequential one: path=scan is the scanner + decode-in-
// worker pipeline (Stream's default), path=seq is the single-goroutine
// decode source (Config.SequentialDecode). Both run the identical
// decode+classify+count work over the identical capture bytes at
// workers 1, 4, and 16, batch 64. scripts/bench.sh aggregates the grid
// into BENCH_pipeline.json's decode_parallel section, and the scaling
// gate (TestDecodeParallelScalingGate via scripts/check.sh) enforces
// workers=16 >= 2x workers=1 on path=scan wherever the hardware has
// the cores to show it.
func BenchmarkDecodeParallel(b *testing.B) {
	conns, _, _ := benchData(b)
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, path := range []struct {
		name string
		seq  bool
	}{{"scan", false}, {"seq", true}} {
		for _, workers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("path=%s/workers=%d", path.name, workers), func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				b.ReportAllocs()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				classified := int64(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					counts, err := pipeline.Stream(context.Background(),
						bytes.NewReader(data),
						pipeline.Config{Workers: workers, BatchSize: 64, SequentialDecode: path.seq}, nil)
					if err != nil {
						b.Fatal(err)
					}
					if counts.Classified != int64(len(conns)) {
						b.Fatalf("classified %d of %d", counts.Classified, len(conns))
					}
					classified += counts.Classified
				}
				b.StopTimer()
				runtime.ReadMemStats(&after)
				records := float64(classified)
				b.ReportMetric(records/b.Elapsed().Seconds(), "conns/sec")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/records, "ns/record")
				b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/records, "B/record")
				b.ReportMetric(float64(after.Mallocs-before.Mallocs)/records, "allocs/record")
			})
		}
	}
}

// BenchmarkShardedIngest measures the sharded multi-reader ingest
// against the single-scanner stream over the identical indexed capture
// bytes: path=scan is pipeline.Stream at 1 worker (the serial-scanner
// baseline every shard cell is normalized against), path=sharded runs
// pipeline.ShardedScan over a SegmentedSource at shards {1,2,4,8} with
// the worker pool sized to the shard count, so each cell isolates what
// adding independent scanners buys. scripts/bench.sh aggregates the
// grid into BENCH_pipeline.json's sharded_ingest section; the scaling
// gate (TestShardedIngestScalingGate via scripts/check.sh) enforces
// shards=8 >= 2x shards=1 wherever the hardware has the cores, and the
// 1-core contract — shards=1 within 5% of path=scan, no tax for the
// segment indirection — is checked from the recorded cells.
func BenchmarkShardedIngest(b *testing.B) {
	conns, _, _ := benchData(b)
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	if err := w.EnableIndex(256); err != nil {
		b.Fatal(err)
	}
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	idx, err := capture.FindIndex(bytes.NewReader(data), int64(len(data)), "")
	if err != nil {
		b.Fatal(err)
	}
	report := func(b *testing.B, classified int64, before, after *runtime.MemStats) {
		records := float64(classified)
		b.ReportMetric(records/b.Elapsed().Seconds(), "conns/sec")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/records, "ns/record")
		b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/records, "B/record")
		b.ReportMetric(float64(after.Mallocs-before.Mallocs)/records, "allocs/record")
	}
	b.Run("path=scan/workers=1", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		classified := int64(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			counts, err := pipeline.Stream(context.Background(),
				bytes.NewReader(data),
				pipeline.Config{Workers: 1, BatchSize: 64}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if counts.Classified != int64(len(conns)) {
				b.Fatalf("classified %d of %d", counts.Classified, len(conns))
			}
			classified += counts.Classified
		}
		b.StopTimer()
		runtime.ReadMemStats(&after)
		report(b, classified, &before, &after)
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("path=sharded/shards=%d", shards), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			classified := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src, err := capture.NewSegmentedSource(bytes.NewReader(data), int64(len(data)), idx, shards)
				if err != nil {
					b.Fatal(err)
				}
				counts, err := pipeline.ShardedScan(context.Background(), src,
					pipeline.Config{Workers: shards, BatchSize: 64}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if counts.Classified != int64(len(conns)) {
					b.Fatalf("classified %d of %d", counts.Classified, len(conns))
				}
				classified += counts.Classified
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			report(b, classified, &before, &after)
		})
	}
}

// BenchmarkStreamTelemetryOverhead measures what the telemetry
// subsystem costs on the streaming hot path: the identical Stream run
// with telemetry off versus attached (stage histograms, queue gauges,
// per-signature sharded counters, records_total instruments). The
// contract tracked in EXPERIMENTS.md is ≤5% throughput loss and 0
// extra allocs/record; scripts/bench.sh records both rows in
// BENCH_pipeline.json as stream_telemetry_overhead.
func BenchmarkStreamTelemetryOverhead(b *testing.B) {
	conns, _, _ := benchData(b)
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	const workers = 4
	tel := pipeline.NewTelemetry(nil)
	for _, mode := range []struct {
		name string
		tel  *pipeline.Telemetry
	}{{"telemetry=off", nil}, {"telemetry=on", tel}} {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			classified := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh Metrics per run: the shared Telemetry's own
				// counter block accumulates across runs by design, so the
				// per-run count must come from an explicit block (both
				// modes get one, keeping the comparison symmetric).
				var m pipeline.Metrics
				counts, err := pipeline.Stream(context.Background(),
					bytes.NewReader(data),
					pipeline.Config{Workers: workers, Telemetry: mode.tel, Metrics: &m}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if counts.Classified != int64(len(conns)) {
					b.Fatalf("classified %d of %d", counts.Classified, len(conns))
				}
				classified += counts.Classified
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			records := float64(classified)
			b.ReportMetric(records/b.Elapsed().Seconds(), "conns/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/records, "ns/record")
			b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/records, "B/record")
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/records, "allocs/record")
		})
	}
}

// BenchmarkStreamTraceOverhead measures what the tracing subsystem
// costs on the streaming hot path: the identical Stream run with no
// tracer versus a tracer attached with per-record sampling off — the
// production default, where only per-batch stage spans are emitted
// into the lock-free rings. The contract tracked in EXPERIMENTS.md is
// ≤5% throughput loss and ~0 extra allocs/record; scripts/bench.sh
// records both rows in BENCH_pipeline.json as stream_trace_overhead.
func BenchmarkStreamTraceOverhead(b *testing.B) {
	conns, _, _ := benchData(b)
	var buf bytes.Buffer
	w := capture.NewWriter(&buf)
	for _, c := range conns {
		if err := w.Write(c); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	const workers = 4
	tracer := trace.New(trace.Config{TraceID: 0xbe7c, SampleEvery: 0})
	for _, mode := range []struct {
		name   string
		tracer *trace.Tracer
	}{{"trace=off", nil}, {"trace=on", tracer}} {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			classified := int64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				counts, err := pipeline.Stream(context.Background(),
					bytes.NewReader(data),
					pipeline.Config{Workers: workers, Tracer: mode.tracer}, nil)
				if err != nil {
					b.Fatal(err)
				}
				if counts.Classified != int64(len(conns)) {
					b.Fatalf("classified %d of %d", counts.Classified, len(conns))
				}
				classified += counts.Classified
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			records := float64(classified)
			b.ReportMetric(records/b.Elapsed().Seconds(), "conns/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/records, "ns/record")
			b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/records, "B/record")
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/records, "allocs/record")
		})
	}
}

// BenchmarkCaptureCodec times the TDCAP encode+decode round trip.
func BenchmarkCaptureCodec(b *testing.B) {
	conns, _, _ := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		w := capture.NewWriter(&buf)
		for _, c := range conns[:100] {
			if err := w.Write(c); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// writeCounter is an io.Writer that only counts.
type writeCounter int64

func (w *writeCounter) Write(p []byte) (int, error) {
	*w += writeCounter(len(p))
	return len(p), nil
}

// BenchmarkClassifierDispatch compares the optimized switch-based
// signature matcher with the declarative rule table (DESIGN.md §5's
// dispatch ablation): the price of the extensible formulation.
func BenchmarkClassifierDispatch(b *testing.B) {
	tails := []core.TailSummary{
		{},
		{Bare: 1, BareAcks: []uint32{501}},
		{WithACK: 3},
		{Bare: 2, BareAcks: []uint32{501, 0}},
		{Bare: 2, WithACK: 1, BareAcks: []uint32{1, 2}},
	}
	stages := []core.Stage{core.StagePostSYN, core.StagePostACK, core.StagePostPSH, core.StagePostData}
	b.Run("ruletable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := &tails[i%len(tails)]
			_ = core.MatchRuleTable(stages[i%len(stages)], t)
		}
	})
}

// BenchmarkGeoLookup measures the per-record source-address resolution
// with and without the per-worker range cache the streaming
// aggregators use (internal/geo.Cache): mode=uncached binary-searches
// the plan on every lookup; mode=cached memoizes matched ranges in a
// direct-mapped table keyed by address prefix. The address stream is
// the scenario's own client mix, so cache behaviour reflects real
// workload locality. scripts/bench.sh records the cached/uncached
// delta in BENCH_pipeline.json.
func BenchmarkGeoLookup(b *testing.B) {
	conns, _, s := benchData(b)
	addrs := make([]netip.Addr, 4096)
	for i := range addrs {
		addrs[i] = conns[i%len(conns)].SrcIP
	}
	b.Run("mode=uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Geo.Lookup(addrs[i%len(addrs)])
		}
	})
	b.Run("mode=cached", func(b *testing.B) {
		cache := geo.NewCache(s.Geo)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = cache.Lookup(addrs[i%len(addrs)])
		}
	})
}

// BenchmarkLongitudinalGen times the virtual-time generator end to
// end — arrival-process expansion plus packet-level simulation plus
// TDCAP encoding — over long scenario windows. This is the recorded
// proof of the event-queue refactor's headline property: wall-clock
// cost scales with the connection count, not the virtual window, so a
// 14-day scenario generates in seconds. scripts/bench.sh aggregates
// the grid into BENCH_pipeline.json's longitudinal_gen section, whose
// validator enforces the paper-scale contract (a 336-hour window must
// sustain enough virtual-hours/sec to finish a 14-day run in under a
// minute).
func BenchmarkLongitudinalGen(b *testing.B) {
	for _, hours := range []int{48, 336} {
		total := hours * 50
		b.Run(fmt.Sprintf("preset=iran2022/hours=%d", hours), func(b *testing.B) {
			b.ReportAllocs()
			written := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := workload.PresetScenario("iran2022", total, hours, 7)
				if err != nil {
					b.Fatal(err)
				}
				src := s.StreamSpecs(s.SpecsSharded(0), 0)
				w := capture.NewWriter(io.Discard)
				for {
					c, err := src.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					if err := w.Write(c); err != nil {
						b.Fatal(err)
					}
					written++
				}
				src.Close()
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if written == 0 {
				b.Fatal("generator produced no connections")
			}
			secs := b.Elapsed().Seconds()
			b.ReportMetric(float64(written)/secs, "conns/sec")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(written), "ns/record")
			b.ReportMetric(float64(hours*b.N)/secs, "virtual-hours/sec")
		})
	}
}
